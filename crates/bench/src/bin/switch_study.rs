//! Supplementary: cycle-accurate Data Vortex switch characterization.
//!
//! Reproduces the methodology of the robustness studies the paper cites
//! (refs [14][15]): offered-load sweeps per traffic pattern, reporting
//! accepted throughput, latency, and deflections, plus the topology
//! summary of Figure 1 and the analytic-model calibration.

use std::sync::Arc;

use dv_bench::{f2, f3, faults, quick, serial, Report};
use dv_core::config::DvParams;
use dv_core::metrics::MetricsRegistry;
use dv_switch::traffic::{Arrival, LoadSweep, Pattern};
use dv_switch::{AnyTopology, SwitchModel, TopoKind, Topology};

fn main() {
    let mut report = Report::new("switch_study");
    let topo = Topology::new(8, 4);
    println!(
        "Data Vortex switch: H={} A={} -> C={} cylinders, {} ports, {} switching nodes\n",
        topo.height,
        topo.angles,
        topo.cylinders(),
        topo.ports(),
        topo.nodes()
    );

    let measure = if quick() { 1_000 } else { 5_000 };
    let fault_plan = faults();
    let loads = [0.1, 0.3, 0.5, 0.7, 0.9];

    // `--stream`: a dedicated serial run at 0.7 offered load streams the
    // switch's cycle-level telemetry, with virtual time = cycle × hop
    // time, flushed at every sample boundary.
    if dv_bench::stream::stream_path().is_some() {
        let metrics = Arc::new(MetricsRegistry::enabled());
        let streamer = dv_bench::Streamer::attach(&metrics, "switch_study", topo.ports())
            .expect("--stream was passed");
        let hop_ps = DvParams::default().hop_time;
        let flush_cycles = (streamer.interval_ps() / hop_ps).max(1);
        let mut sweep = LoadSweep::new(topo.clone());
        sweep.measure = measure;
        sweep.metrics = Some(Arc::clone(&metrics));
        sweep.faults = fault_plan.clone();
        let end_cycles = sweep.warmup + sweep.measure;
        sweep.run_streamed(0.7, hop_ps, flush_cycles);
        streamer.finish(end_cycles * hop_ps);
    }
    for pattern in [Pattern::Uniform, Pattern::Hotspot, Pattern::Tornado, Pattern::BitReverse] {
        let metrics = Arc::new(MetricsRegistry::enabled());
        let mut sweep = LoadSweep::new(topo.clone());
        sweep.pattern = pattern;
        sweep.measure = measure;
        sweep.metrics = Some(Arc::clone(&metrics));
        sweep.faults = fault_plan.clone();
        // The parallel driver is byte-identical to the serial one; CI cmps
        // a --serial run against this output to prove it.
        let points =
            if serial() { sweep.sweep(&loads) } else { sweep.sweep_parallel(&loads) };
        let mut rows = Vec::new();
        for p in points {
            rows.push(vec![
                f2(p.offered),
                f3(p.accepted),
                f2(p.latency_mean),
                f2(p.total_latency_mean),
                format!("<2^{}", p.total_latency_p99_log2.saturating_add(1)),
                f3(p.deflections_mean),
            ]);
        }
        report.section(
            &format!("pattern: {pattern:?} (Bernoulli arrivals)"),
            &["offered", "accepted", "switch lat (cyc)", "total lat (cyc)", "p99 lat", "deflections"],
            rows,
        );
        report.add_run(&format!("sweep.{pattern:?}"), &metrics);
    }

    // Bursty traffic (the Yang & Bergman study).
    let metrics = Arc::new(MetricsRegistry::enabled());
    let mut sweep = LoadSweep::new(topo.clone());
    sweep.arrival = Arrival::Bursty { mean_burst: 8.0 };
    sweep.measure = measure;
    sweep.metrics = Some(Arc::clone(&metrics));
    sweep.faults = fault_plan;
    let points = if serial() { sweep.sweep(&loads) } else { sweep.sweep_parallel(&loads) };
    let mut rows = Vec::new();
    for p in points {
        rows.push(vec![f2(p.offered), f3(p.accepted), f2(p.total_latency_mean), f3(p.deflections_mean)]);
    }
    report.section(
        "pattern: Uniform, bursty arrivals (mean burst 8)",
        &["offered", "accepted", "total lat (cyc)", "deflections"],
        rows,
    );
    report.add_run("sweep.bursty", &metrics);

    // Rival topologies at the same port count: the k-ary fat tree and the
    // Deng et al. min-path random-regular graph under the patterns where
    // deflection routing claims its irregular-traffic advantage. Same
    // LoadSweep driver, same accounting, one point per (kind, pattern);
    // `scaling_study --topo <kind>` extends this cross-section to 4096
    // ports. Rival rows run fault-free so the comparison isolates the
    // topology, not the fault plan.
    let mut rows = Vec::new();
    for kind in TopoKind::ALL {
        let net = AnyTopology::for_ports(kind, topo.ports());
        for pattern in [Pattern::Uniform, Pattern::Hotspot, Pattern::Tornado, Pattern::BitReverse]
        {
            let mut sweep = LoadSweep::for_net(net.clone());
            sweep.pattern = pattern;
            sweep.measure = measure;
            let p = sweep.run(0.7);
            rows.push(vec![
                kind.name().into(),
                format!("{pattern:?}"),
                f3(p.accepted),
                f2(p.total_latency_mean),
                f3(p.deflections_mean),
            ]);
        }
    }
    report.section(
        &format!("Rival topologies at {} ports, 0.7 offered load", topo.ports()),
        &["topology", "pattern", "accepted/port", "total lat (cyc)", "deflections"],
        rows,
    );

    // Analytic model calibration against the cycle simulator.
    let mut model = SwitchModel::from_params(&DvParams::default());
    let calibrated = model.calibrate(7);
    println!(
        "analytic model: calibrated saturation deflection penalty = {:.2} hops (paper: \"statistically by two hops\")",
        calibrated
    );
    report.finish();
}
