//! Figure 6: GUPS — updates per second per node (6a) and aggregate (6b).

use dv_bench::{f2, quick, table};
use dv_kernels::gups::{dv, mpi, GupsConfig};

fn main() {
    let cfg = if quick() {
        GupsConfig { table_per_node: 1 << 11, updates_per_node: 1 << 13, bucket: 1024, stream_offset: 0 }
    } else {
        // HPCC convention: updates = 4 × table size.
        GupsConfig { table_per_node: 1 << 13, updates_per_node: 4 << 13, bucket: 1024, stream_offset: 0 }
    };
    let mut rows_per = Vec::new();
    let mut rows_agg = Vec::new();
    for nodes in [4usize, 8, 16, 32] {
        let d = dv::run(cfg, nodes);
        let m = mpi::run(cfg, nodes);
        assert_eq!(d.checksum, m.checksum, "backends disagree on the table");
        rows_per.push(vec![nodes.to_string(), f2(d.mups_per_node()), f2(m.mups_per_node())]);
        rows_agg.push(vec![nodes.to_string(), f2(d.mups_total()), f2(m.mups_total())]);
    }
    println!(
        "Figure 6a — GUPS per processing element (MUPS), table 2^{} words/node, {} updates/node\n",
        cfg.table_per_node.trailing_zeros(),
        cfg.updates_per_node
    );
    println!("{}", table(&["nodes", "Data Vortex", "Infiniband"], &rows_per));
    println!("Figure 6b — aggregate GUPS (MUPS)\n");
    println!("{}", table(&["nodes", "Data Vortex", "Infiniband"], &rows_agg));
}
