//! Figure 6: GUPS — updates per second per node (6a) and aggregate (6b).
//!
//! The fully instrumented benchmark: every run carries a tracer and a
//! metrics registry, so `--json <path>` drops an artifact with switch
//! deflection histograms, VIC group-counter stats, and per-state
//! virtual-time totals alongside the figure's tables.

use std::sync::Arc;

use dv_bench::{f2, faults, quick, Report};
use dv_core::config::MachineConfig;
use dv_core::metrics::MetricsRegistry;
use dv_core::spec::SimSpec;
use dv_core::trace::Tracer;
use dv_kernels::gups::{dv, mpi, GupsConfig};

fn main() {
    let cfg = if quick() {
        GupsConfig { table_per_node: 1 << 11, updates_per_node: 1 << 13, bucket: 1024, stream_offset: 0 }
    } else {
        // HPCC convention: updates = 4 × table size.
        GupsConfig { table_per_node: 1 << 13, updates_per_node: 4 << 13, bucket: 1024, stream_offset: 0 }
    };
    // Optional chaos mode: the Data Vortex runs carry the fault plan (the
    // InfiniBand model is unaffected), so the checksum comparison below
    // doubles as an end-to-end recovery check.
    let fault_plan = faults();
    let mut report = Report::new("fig6");
    let mut rows_per = Vec::new();
    let mut rows_agg = Vec::new();
    for nodes in [4usize, 8, 16, 32] {
        let mut machine = MachineConfig::paper_cluster();
        machine.faults = fault_plan.clone();
        let dv_tracer = Arc::new(Tracer::enabled());
        let dv_metrics = Arc::new(MetricsRegistry::enabled());
        // `--stream`: the 4-node Data Vortex run emits live dv-events-v1
        // telemetry (one stream per invocation; later runs are summarized
        // in the `--json` artifact as usual).
        let streamer =
            if nodes == 4 { dv_bench::Streamer::attach(&dv_metrics, "fig6", nodes) } else { None };
        let d = dv::run_spec(
            cfg,
            SimSpec::new(nodes)
                .machine(machine.clone())
                .tracer(Arc::clone(&dv_tracer))
                .metrics(Arc::clone(&dv_metrics)),
        );
        if let Some(s) = streamer {
            s.finish(d.elapsed);
        }
        let mpi_metrics = Arc::new(MetricsRegistry::enabled());
        let m = mpi::run_spec(
            cfg,
            SimSpec::new(nodes)
                .machine(machine)
                .tracer(Arc::new(Tracer::enabled()))
                .metrics(Arc::clone(&mpi_metrics)),
        );
        assert_eq!(d.checksum, m.checksum, "backends disagree on the table");
        report.add_run(&format!("dv.n{nodes}"), &dv_metrics);
        report.add_run(&format!("mpi.n{nodes}"), &mpi_metrics);
        if nodes == 4 {
            report.set_trace(dv_tracer.dump());
        }
        rows_per.push(vec![nodes.to_string(), f2(d.mups_per_node()), f2(m.mups_per_node())]);
        rows_agg.push(vec![nodes.to_string(), f2(d.mups_total()), f2(m.mups_total())]);
    }
    report.section(
        &format!(
            "Figure 6a — GUPS per processing element (MUPS), table 2^{} words/node, {} updates/node",
            cfg.table_per_node.trailing_zeros(),
            cfg.updates_per_node
        ),
        &["nodes", "Data Vortex", "Infiniband"],
        rows_per,
    );
    report.section("Figure 6b — aggregate GUPS (MUPS)", &["nodes", "Data Vortex", "Infiniband"], rows_agg);
    report.finish();
}
