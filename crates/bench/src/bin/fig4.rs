//! Figure 4: global barrier latency vs node count.

use dv_bench::{f3, quick, Report, Streamer};
use dv_core::time::as_us_f64;
use dv_kernels::barrier::{barrier_latency, barrier_latency_spec, BarrierKind};

fn main() {
    let reps = if quick() { 100 } else { 1000 };
    // `--stream`: one representative instrumented run (32-node hardware
    // barrier) emits dv-events-v1 telemetry before the sweep proper.
    if dv_bench::stream::stream_path().is_some() {
        let metrics = std::sync::Arc::new(dv_core::metrics::MetricsRegistry::enabled());
        let streamer = Streamer::attach(&metrics, "fig4", 32).expect("--stream was passed");
        let per_barrier = barrier_latency_spec(
            BarrierKind::DvIntrinsic,
            dv_core::spec::SimSpec::new(32).metrics(std::sync::Arc::clone(&metrics)),
            reps,
        );
        streamer.finish(per_barrier * reps as u64);
    }
    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8, 16, 32] {
        let dv = barrier_latency(BarrierKind::DvIntrinsic, nodes, reps);
        let fast = barrier_latency(BarrierKind::DvFast, nodes, reps);
        let mpi = barrier_latency(BarrierKind::Mpi, nodes, reps);
        rows.push(vec![
            nodes.to_string(),
            f3(as_us_f64(dv)),
            f3(as_us_f64(fast)),
            f3(as_us_f64(mpi)),
        ]);
    }
    let mut report = Report::new("fig4");
    report.section(
        &format!("Figure 4 — global barrier latency (µs, mean of {reps} barriers)"),
        &["nodes", "Data Vortex", "FastBarrier", "Infiniband"],
        rows,
    );
    report.finish();
}
