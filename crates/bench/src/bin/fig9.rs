//! Figure 9: application speedup of Data Vortex over MPI-over-InfiniBand
//! (SNAP best-effort port; Vorticity and Heat aggressively restructured).

use dv_apps::fig9::{speedups, Fig9Sizes};
use dv_bench::{f2, quick, Report};
use dv_core::time::as_us_f64;

fn main() {
    let sizes = if quick() { Fig9Sizes::for_tests() } else { Fig9Sizes::for_nodes_32() };
    // `--stream`: one representative instrumented run (the restructured
    // Heat solver) emits dv-events-v1 telemetry before the figure proper.
    if dv_bench::stream::stream_path().is_some() {
        let metrics = std::sync::Arc::new(dv_core::metrics::MetricsRegistry::enabled());
        let nodes = sizes.heat.nodes();
        let streamer =
            dv_bench::Streamer::attach(&metrics, "fig9", nodes).expect("--stream was passed");
        let r = dv_apps::heat::dv::run_spec(
            sizes.heat,
            dv_core::spec::SimSpec::new(nodes).metrics(std::sync::Arc::clone(&metrics)),
        );
        streamer.finish(r.elapsed);
    }
    let results = speedups(&sizes);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                f2(as_us_f64(s.mpi)),
                f2(as_us_f64(s.dv)),
                f2(s.factor()),
            ]
        })
        .collect();
    let mut report = Report::new("fig9");
    report.section(
        "Figure 9 — application speedup w.r.t. MPI-over-Infiniband",
        &["app", "MPI (µs)", "DV (µs)", "speedup"],
        rows,
    );
    println!("paper: SNAP 1.19x (best-effort port), Vorticity ~3.4x, Heat ~2.5x (restructured)");
    report.finish();
}
