//! Figure 9: application speedup of Data Vortex over MPI-over-InfiniBand
//! (SNAP best-effort port; Vorticity and Heat aggressively restructured).

use dv_apps::fig9::{speedups, Fig9Sizes};
use dv_bench::{f2, quick, Report};
use dv_core::time::as_us_f64;

fn main() {
    let sizes = if quick() { Fig9Sizes::for_tests() } else { Fig9Sizes::for_nodes_32() };
    let results = speedups(&sizes);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                f2(as_us_f64(s.mpi)),
                f2(as_us_f64(s.dv)),
                f2(s.factor()),
            ]
        })
        .collect();
    let mut report = Report::new("fig9");
    report.section(
        "Figure 9 — application speedup w.r.t. MPI-over-Infiniband",
        &["app", "MPI (µs)", "DV (µs)", "speedup"],
        rows,
    );
    println!("paper: SNAP 1.19x (best-effort port), Vorticity ~3.4x, Heat ~2.5x (restructured)");
    report.finish();
}
