//! Figure 5: execution trace of the MPI GUPS run.
//!
//! The paper shows an Extrae/Paraver trace: per-node timelines colored by
//! state (computation vs MPI calls) with message lines. We record the same
//! events from the simulated run and render (a) the complete execution and
//! (b) a zoom into the central region, then dump the machine-readable
//! trace to `fig5_trace.txt`.

use std::sync::Arc;

use dv_bench::{quick, Report};
use dv_core::config::MachineConfig;
use dv_core::metrics::MetricsRegistry;
use dv_core::spec::SimSpec;
use dv_core::trace::Tracer;
use dv_kernels::gups::{dv, mpi, GupsConfig};

fn main() {
    let nodes = 8;
    let cfg = if quick() {
        GupsConfig { table_per_node: 1 << 10, updates_per_node: 2 << 10, bucket: 1024, stream_offset: 0 }
    } else {
        GupsConfig { table_per_node: 1 << 12, updates_per_node: 8 << 10, bucket: 1024, stream_offset: 0 }
    };
    let tracer = Arc::new(Tracer::enabled());
    let metrics = Arc::new(MetricsRegistry::enabled());
    let result = mpi::run_spec(
        cfg,
        SimSpec::new(nodes)
            .machine(MachineConfig::paper_cluster())
            .tracer(Arc::clone(&tracer))
            .metrics(Arc::clone(&metrics)),
    );

    let spans = tracer.spans();
    let t_end = spans.iter().map(|s| s.end).max().unwrap_or(1);

    println!("Figure 5a — complete execution ({} updates, {} nodes)\n", result.total_updates, nodes);
    println!("{}", tracer.render_ascii(nodes, 100, None));

    // Zoom into the central 10% of the run, like the paper's close-up.
    let lo = t_end / 2 - t_end / 20;
    let hi = t_end / 2 + t_end / 20;
    println!("Figure 5b — zoom into the central region\n");
    println!("{}", tracer.render_ascii(nodes, 100, Some((lo, hi))));

    let messages = tracer.messages();
    println!(
        "trace: {} spans, {} messages; aggregate rate {:.1} MUPS",
        spans.len(),
        messages.len(),
        result.mups_total()
    );
    let dump = tracer.dump();
    std::fs::write("fig5_trace.txt", &dump).expect("write fig5_trace.txt");
    println!("machine-readable trace written to fig5_trace.txt ({} bytes)", dump.len());

    // Extension beyond the paper: the same workload traced on the Data
    // Vortex — mostly sends and short waits instead of collectives.
    let dv_tracer = Arc::new(Tracer::enabled());
    let dv_metrics = Arc::new(MetricsRegistry::enabled());
    // `--stream`: the Data Vortex GUPS run emits live dv-events-v1
    // telemetry (the MPI run above stays un-streamed).
    let streamer = dv_bench::Streamer::attach(&dv_metrics, "fig5", nodes);
    let dv_result = dv::run_spec(
        cfg,
        SimSpec::new(nodes)
            .machine(MachineConfig::paper_cluster())
            .tracer(Arc::clone(&dv_tracer))
            .metrics(Arc::clone(&dv_metrics)),
    );
    if let Some(s) = streamer {
        s.finish(dv_result.elapsed);
    }
    println!("\nExtension — the same GUPS run on the Data Vortex\n");
    println!("{}", dv_tracer.render_ascii(nodes, 100, None));
    println!(
        "Data Vortex aggregate rate {:.1} MUPS vs MPI {:.1} MUPS",
        dv_result.mups_total(),
        result.mups_total()
    );

    let mut report = Report::new("fig5");
    report.add_run(&format!("mpi.n{nodes}"), &metrics);
    report.add_run(&format!("dv.n{nodes}"), &dv_metrics);
    report.set_trace(dump);
    report.finish();
}
