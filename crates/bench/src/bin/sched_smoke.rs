//! Scheduler-throughput smoke test: the sharded engine's perf artifact.
//!
//! Two workloads, both pure scheduler work (pooled timer commit + resume
//! per message, no model computation), both run on both engine
//! generations at 64 and 1024 nodes:
//!
//! * **Pump** — every node drives a self-delivery send/recv loop in its
//!   own disjoint virtual-time window, so consecutive events belong to
//!   the running process. The cooperative engine commits these on the
//!   self-resume fast path (parking *is* dispatching — zero context
//!   switches); the pre-sharding engine pays its full channel round-trip
//!   (two context switches, two allocating sends) per resume regardless.
//!   This is the dispatch-throughput figure, and the one
//!   `dv-report --gate BENCH_sim.json` enforces: the sharded engine must
//!   clear 4x the reference at 1024 nodes.
//! * **Ring** — every node sends to its right neighbor and blocks on its
//!   own port, in lockstep. Every message forces a real thread handoff
//!   on *both* engines, so this row is bounded by the host's context
//!   switch, not the event path; it is reported as the worst case but
//!   not gated (on a single-core host it measures the OS scheduler).
//!
//! Like `perf_smoke` (and unlike every fig binary), this artifact records
//! **wall-clock host measurements** — it is deliberately *not*
//! byte-reproducible across runs or machines. Compare trends, not bytes.
//! (The virtual elapsed times in the table *are* deterministic and
//! engine-invariant; only the rates vary.)

use std::sync::Arc;
use std::time::Instant;

use dv_bench::{f2, quick, Report};
use dv_core::spec::Engine;
use dv_core::time::us;
use dv_sim::{Port, Sim};

/// Staggered self-delivery pumps: node `i` runs `msgs` send/recv cycles
/// against its own port inside the virtual window starting at
/// `i * (msgs + 16) us`, so windows never overlap and every commit's next
/// event belongs to the process that just parked.
fn pump(engine: Engine, nodes: usize, msgs: u64) -> (u64, f64) {
    let sim = Sim::with_engine(engine, 0);
    let window = msgs + 16;
    for me in 0..nodes {
        sim.spawn(format!("pump{me}"), move |ctx| {
            let port: Port<u64> = Port::new();
            ctx.delay(us(me as u64 * window));
            for k in 0..msgs {
                port.send_delayed(ctx, us(1), k);
                let (_, got) = port.recv(ctx);
                assert_eq!(got, k);
            }
        });
    }
    let t0 = Instant::now();
    let elapsed = sim.run();
    (elapsed, t0.elapsed().as_secs_f64())
}

/// Lockstep message ring: node `i` sends one word to node `i+1`'s port
/// and blocks on its own. Every hop is a cross-process handoff.
fn ring(engine: Engine, nodes: usize, msgs: u64) -> (u64, f64) {
    let sim = Sim::with_engine(engine, 0);
    let ports: Arc<Vec<Port<u64>>> = Arc::new((0..nodes).map(|_| Port::new()).collect());
    for me in 0..nodes {
        let ports = Arc::clone(&ports);
        sim.spawn(format!("ring{me}"), move |ctx| {
            let next = (me + 1) % nodes;
            for k in 0..msgs {
                ports[next].send_delayed(ctx, us(1), k);
                let (_, got) = ports[me].recv(ctx);
                assert_eq!(got, k, "ring is lockstep; every hop carries the round");
            }
        });
    }
    let t0 = Instant::now();
    let elapsed = sim.run();
    (elapsed, t0.elapsed().as_secs_f64())
}

/// Best-of-REPS for one workload shape at one node count, both engines.
/// Returns table rows plus the sharded-over-reference speedup.
fn measure(
    shape: &str,
    run: impl Fn(Engine, usize, u64) -> (u64, f64),
    nodes: usize,
    msgs: u64,
    reps: usize,
) -> (Vec<Vec<String>>, f64) {
    let mut secs = [f64::INFINITY; 2]; // [reference, sharded]
    let mut virt = [0u64; 2];
    for _ in 0..reps {
        for (i, engine) in [Engine::Reference, Engine::Sharded].into_iter().enumerate() {
            let (elapsed, s) = run(engine, nodes, msgs);
            virt[i] = elapsed;
            secs[i] = secs[i].min(s);
        }
    }
    assert_eq!(virt[0], virt[1], "engines disagreed on virtual elapsed time");
    let total = nodes as u64 * msgs;
    let rate = |s: f64| total as f64 / s;
    let rows = [("reference (pre-sharding)", secs[0]), ("sharded", secs[1])]
        .into_iter()
        .map(|(name, s)| {
            vec![
                shape.into(),
                name.into(),
                nodes.to_string(),
                total.to_string(),
                virt[0].to_string(),
                f2(rate(s)),
            ]
        })
        .collect();
    (rows, rate(secs[1]) / rate(secs[0]))
}

fn main() {
    let mut report = Report::new("sched_smoke");
    let (pump_msgs, ring_msgs): (u64, u64) = if quick() { (100, 50) } else { (500, 200) };

    // Alternating engines each repetition so host-load transients hit
    // both; the smallest wall time estimates the unloaded rate. The
    // virtual elapsed time must agree across engines — the workloads are
    // the determinism suite's shapes, so a mismatch here means the
    // benchmark is comparing two different simulations.
    const REPS: usize = 3;
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &nodes in &[64usize, 1024] {
        let (r, s) = measure("pump", pump, nodes, pump_msgs, REPS);
        rows.extend(r);
        speedups.push((format!("pump@{nodes}"), s));
    }
    for &nodes in &[64usize, 1024] {
        let (r, s) = measure("ring", ring, nodes, ring_msgs, REPS);
        rows.extend(r);
        speedups.push((format!("ring@{nodes}"), s));
    }
    report.section(
        &format!("Scheduler throughput, {pump_msgs} pump / {ring_msgs} ring msgs per node"),
        &["workload", "engine", "nodes", "messages", "virtual ps", "msgs/sec"],
        rows,
    );
    report.section(
        "Sharded engine speedup over pre-sharding reference",
        &["workload", "speedup"],
        speedups
            .iter()
            .map(|(label, x)| vec![label.clone(), f2(*x)])
            .chain([vec!["target pump@1024".into(), ">= 4.00".into()]])
            .collect(),
    );

    let &(_, at_1024) = &speedups[1];
    assert_eq!(speedups[1].0, "pump@1024");
    if at_1024 < 4.0 {
        println!("WARNING: sharded pump speedup {at_1024:.2}x at 1024 nodes below the 4x target");
    }
    report.finish();
}
