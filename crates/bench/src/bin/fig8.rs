//! Figure 8: Graph500 BFS, harmonic-mean TEPS vs node count.
//!
//! The paper searches the largest graph that fits the cluster and reports
//! 64 roots; the simulation uses scale 14 (scale 12 with `--quick`) and 8
//! roots. Harmonic-mean TEPS is the Graph500 reporting rule.

use dv_bench::{f2, faults, quick, Report};
use dv_core::config::MachineConfig;
use dv_core::stats::harmonic_mean;
use dv_kernels::graph::{dv, kronecker_edges, mpi, partition_csr, pick_roots, validate_bfs, Csr, GraphConfig, VertexPart};

fn main() {
    let (scale, roots_n) = if quick() { (12, 4) } else { (14, 8) };
    // Optional chaos mode for the Data Vortex searches; every tree is
    // still validated, so recovery correctness is checked per root.
    let fault_plan = faults();
    let gcfg = GraphConfig { scale, edgefactor: 16, seed: 0x6500 };
    let edges = kronecker_edges(&gcfg);
    let csr = Csr::build(gcfg.vertices(), &edges);
    let roots = pick_roots(&csr, roots_n, 99);

    // `--stream`: one representative instrumented search (8 nodes, first
    // root) emits dv-events-v1 telemetry before the sweep proper.
    if dv_bench::stream::stream_path().is_some() {
        let metrics = std::sync::Arc::new(dv_core::metrics::MetricsRegistry::enabled());
        let streamer = dv_bench::Streamer::attach(&metrics, "fig8", 8).expect("--stream was passed");
        let locals = partition_csr(&csr, VertexPart { nodes: 8 });
        let mut machine = MachineConfig::paper_cluster();
        machine.faults = fault_plan.clone();
        let d = dv::run_spec(
            &locals,
            gcfg.vertices(),
            roots[0],
            dv_core::spec::SimSpec::new(8)
                .machine(machine)
                .metrics(std::sync::Arc::clone(&metrics)),
        );
        streamer.finish(d.elapsed);
    }

    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8, 16, 32] {
        let locals = partition_csr(&csr, VertexPart { nodes });
        // Each (root, backend) search is an independent simulation, so the
        // sweep parallelizes across host threads without touching results
        // (results are collected in root order, so host scheduling cannot
        // change the output — tests/determinism.rs checks this property).
        let (dv_teps, mpi_teps): (Vec<f64>, Vec<f64>) = std::thread::scope(|s| {
            let handles: Vec<_> = roots
                .iter()
                .map(|&root| {
                    let locals = &locals;
                    let csr = &csr;
                    let fault_plan = fault_plan.clone();
                    s.spawn(move || {
                        let mut machine = MachineConfig::paper_cluster();
                        machine.faults = fault_plan;
                        let d = dv::run(locals, gcfg.vertices(), root, machine);
                        validate_bfs(csr, root, &d.parents).expect("DV BFS tree invalid");
                        let m =
                            mpi::run(locals, gcfg.vertices(), root, MachineConfig::paper_cluster());
                        validate_bfs(csr, root, &m.parents).expect("MPI BFS tree invalid");
                        (d.teps(), m.teps())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("BFS worker panicked")).unzip()
        });
        let d = harmonic_mean(&dv_teps) / 1e6;
        let m = harmonic_mean(&mpi_teps) / 1e6;
        rows.push(vec![nodes.to_string(), f2(d), f2(m), f2(d / m)]);
    }
    let mut report = Report::new("fig8");
    report.section(
        &format!(
            "Figure 8 — BFS harmonic-mean MTEPS, scale {scale}, edgefactor 16, {} roots (validated)",
            roots.len()
        ),
        &["nodes", "Data Vortex", "Infiniband", "DV/IB"],
        rows,
    );
    report.finish();
}
