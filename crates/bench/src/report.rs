//! Benchmark run reports: the `--json <path>` artifact every binary can
//! emit, and the renderer behind the `dv-report` viewer.
//!
//! The document schema (`dv-bench-v1`):
//!
//! ```json
//! {
//!   "schema": "dv-bench-v1",
//!   "bench": "fig6",
//!   "quick": true,
//!   "results": [ {"title": "...", "headers": [...], "rows": [[...]]} ],
//!   "runs":    [ {"label": "dv.n4", "metrics": { ...MetricsSnapshot... }} ],
//!   "trace":   "S 0 0 1000 Compute\n..."   // optional Tracer::dump
//! }
//! ```
//!
//! Everything in the document is derived from virtual time and
//! deterministic counters, so running the same binary twice produces
//! byte-identical files — CI can diff `BENCH_*.json` artifacts across
//! commits the same way `tests/determinism.rs` compares trace hashes.

use std::path::PathBuf;

use dv_core::json::Json;
use dv_core::metrics::{MetricsRegistry, MetricsSnapshot};
use dv_core::trace::Tracer;

/// The `--json <path>` (or `--json=path`) argument, if present.
pub fn json_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Collects a benchmark's tables, instrumented runs, and optional trace,
/// printing tables to stdout as it goes; [`Report::finish`] writes the
/// JSON artifact when `--json` was passed.
pub struct Report {
    bench: &'static str,
    quick: bool,
    results: Vec<Json>,
    runs: Vec<Json>,
    trace: Option<String>,
}

impl Report {
    /// Start a report for the named benchmark binary.
    pub fn new(bench: &'static str) -> Self {
        Self { bench, quick: crate::quick(), results: Vec::new(), runs: Vec::new(), trace: None }
    }

    /// Print a titled table to stdout and record it in the document.
    pub fn section(&mut self, title: &str, headers: &[&str], rows: Vec<Vec<String>>) {
        println!("{title}\n");
        println!("{}", crate::table(headers, &rows));
        self.results.push(Json::Obj(vec![
            ("title".to_string(), Json::str(title)),
            (
                "headers".to_string(),
                Json::Arr(headers.iter().map(|h| Json::str(*h)).collect()),
            ),
            (
                "rows".to_string(),
                Json::Arr(
                    rows.into_iter()
                        .map(|r| Json::Arr(r.into_iter().map(Json::str).collect()))
                        .collect(),
                ),
            ),
        ]));
    }

    /// Record one instrumented run's metrics under `label` (skipped when
    /// the registry recorded nothing, e.g. it was disabled).
    pub fn add_run(&mut self, label: &str, metrics: &MetricsRegistry) {
        let snap = metrics.snapshot();
        if snap.is_empty() {
            return;
        }
        self.runs.push(Json::Obj(vec![
            ("label".to_string(), Json::str(label)),
            ("metrics".to_string(), snap.to_json()),
        ]));
    }

    /// Attach an execution trace (`Tracer::dump` text) for the timeline
    /// panel of `dv-report`.
    pub fn set_trace(&mut self, trace: String) {
        self.trace = Some(trace);
    }

    /// The full `dv-bench-v1` document.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("schema".to_string(), Json::str("dv-bench-v1")),
            ("bench".to_string(), Json::str(self.bench)),
            ("quick".to_string(), Json::Bool(self.quick)),
            ("results".to_string(), Json::Arr(self.results.clone())),
            ("runs".to_string(), Json::Arr(self.runs.clone())),
        ];
        if let Some(t) = &self.trace {
            members.push(("trace".to_string(), Json::str(t.clone())));
        }
        Json::Obj(members)
    }

    /// Write the document if `--json <path>` was passed. Call last.
    pub fn finish(self) {
        if let Some(path) = json_path() {
            let doc = self.to_json();
            if let Err(e) = std::fs::write(&path, doc.render_pretty()) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
    }
}

/// Render a `dv-bench-v1` document as a human-readable perf report
/// (the `dv-report` binary is a thin wrapper around this).
pub fn render_report(doc: &Json) -> Result<String, String> {
    use std::fmt::Write as _;

    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
    if schema != "dv-bench-v1" {
        return Err(format!("unsupported schema {schema:?} (expected \"dv-bench-v1\")"));
    }
    let bench = doc.get("bench").and_then(Json::as_str).unwrap_or("?");
    let quick = doc.get("quick").and_then(|q| match q {
        Json::Bool(b) => Some(*b),
        _ => None,
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench: {bench}{}",
        if quick == Some(true) { " (--quick)" } else { "" }
    );

    // Result tables, re-rendered from headers + rows.
    for section in doc.get("results").and_then(Json::as_arr).unwrap_or(&[]) {
        let title = section.get("title").and_then(Json::as_str).unwrap_or("");
        let headers: Vec<&str> = section
            .get("headers")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_str)
            .collect();
        let rows: Vec<Vec<String>> = section
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_arr)
            .map(|r| r.iter().map(|c| c.as_str().unwrap_or("?").to_string()).collect())
            .collect();
        let _ = writeln!(out, "\n{title}\n");
        let _ = write!(out, "{}", crate::table(&headers, &rows));
    }

    // Per-run metrics panels.
    for run in doc.get("runs").and_then(Json::as_arr).unwrap_or(&[]) {
        let label = run.get("label").and_then(Json::as_str).unwrap_or("?");
        let snap = run
            .get("metrics")
            .ok_or_else(|| format!("run {label:?} has no metrics"))
            .and_then(MetricsSnapshot::from_json)?;
        let _ = writeln!(out, "\n== run {label} ==");
        let _ = write!(out, "{}", render_snapshot(&snap));
    }

    // Timeline.
    if let Some(trace) = doc.get("trace").and_then(Json::as_str) {
        let tracer = Tracer::parse(trace)?;
        let nodes =
            tracer.state_totals().keys().map(|&(n, _)| n + 1).max().unwrap_or(0);
        if nodes > 0 {
            let _ = writeln!(out, "\n== timeline ==");
            let _ = write!(out, "{}", tracer.render_ascii(nodes, 100, None));
        }
    }
    Ok(out)
}

/// One run's metrics: top counters, gauges, histogram bars.
fn render_snapshot(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;

    const TOP: usize = 20;
    let mut out = String::new();
    let key_str = |(name, labels): &(String, dv_core::metrics::Labels)| -> String {
        if labels.is_empty() {
            name.clone()
        } else {
            let l: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{name}{{{}}}", l.join(","))
        }
    };

    if !snap.counters().is_empty() {
        let mut counters: Vec<(String, u64)> =
            snap.counters().iter().map(|(k, &v)| (key_str(k), v)).collect();
        // Largest first; ties resolve by key so the order is deterministic.
        counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let shown = counters.len().min(TOP);
        let _ = writeln!(out, "top counters ({shown} of {}):", counters.len());
        let width = counters[..shown].iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &counters[..shown] {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
    }

    if !snap.gauges().is_empty() {
        let _ = writeln!(out, "gauges:");
        let width = snap.gauges().keys().map(|k| key_str(k).len()).max().unwrap_or(0);
        for (k, v) in snap.gauges() {
            let _ = writeln!(out, "  {:<width$}  {v:.4}", key_str(k));
        }
    }

    for (k, h) in snap.histograms() {
        let _ = writeln!(out, "histogram {} (total {}):", key_str(k), h.total);
        let peak = h.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in h.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let bar = "#".repeat(((count * 40).div_ceil(peak)) as usize);
            let _ = writeln!(out, "  2^{i:<2} {bar} {count}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_document_round_trips_and_renders() {
        let metrics = MetricsRegistry::enabled();
        metrics.incr("demo.count", 7);
        metrics.gauge("demo.level", 0.5);
        metrics.observe("demo.sizes", 9);

        let mut r = Report::new("demo");
        r.section(
            "A table",
            &["nodes", "value"],
            vec![vec!["4".into(), "1.25".into()]],
        );
        r.add_run("run.a", &metrics);
        r.set_trace("S 0 0 1000 Compute\n".to_string());

        let text = r.to_json().render_pretty();
        let doc = Json::parse(&text).expect("document parses");
        let report = render_report(&doc).expect("renders");
        assert!(report.contains("bench: demo"));
        assert!(report.contains("A table"));
        assert!(report.contains("demo.count"));
        assert!(report.contains("histogram demo.sizes"));
        assert!(report.contains("== timeline =="));
    }

    #[test]
    fn render_rejects_unknown_schema() {
        let doc = Json::parse(r#"{"schema":"nope"}"#).unwrap();
        assert!(render_report(&doc).is_err());
    }
}
