//! # dv-bench — regenerates every figure of the paper's evaluation
//!
//! One binary per figure (the paper's evaluation has no numbered tables;
//! its results are Figures 3–9):
//!
//! | binary | paper figure | content |
//! |---|---|---|
//! | `fig3` | Fig. 3a/3b | ping-pong bandwidth vs message size, 4 curves |
//! | `fig4` | Fig. 4 | barrier latency vs node count, 3 curves |
//! | `fig5` | Fig. 5 | Extrae-style trace of MPI GUPS (full + zoom) |
//! | `fig6` | Fig. 6a/6b | GUPS per node and aggregate vs node count |
//! | `fig7` | Fig. 7 | FFT-1D aggregate GFLOPS vs node count |
//! | `fig8` | Fig. 8 | Graph500 BFS harmonic-mean GTEPS vs node count |
//! | `fig9` | Fig. 9 | application speedups (SNAP / Vorticity / Heat) |
//! | `switch_study` | (supplementary) | cycle-accurate switch load sweeps |
//! | `ablate_aggregation` | (ablation) | GUPS with source aggregation on/off |
//! | `perf_smoke` | (perf trajectory) | simulator cycles/sec vs the frozen reference |
//!
//! All binaries accept `--quick` for reduced problem sizes; the sweep
//! binaries accept `--serial` to disable the parallel sweep driver (CI
//! `cmp`s serial vs parallel output for byte equality). Criterion
//! micro-benchmarks of the hot substrates live in `benches/micro.rs`.

use std::fmt::Write as _;

pub mod report;
pub mod stream;

pub use report::{json_path, Report};
pub use stream::Streamer;

/// Render an aligned text table (markdown-flavored).
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        let _ = write!(out, "|");
        for (c, w) in cells.iter().zip(widths) {
            let _ = write!(out, " {c:>w$} |");
        }
        let _ = writeln!(out);
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths, &mut out);
    let _ = write!(out, "|");
    for w in &widths {
        let _ = write!(out, "{}|", "-".repeat(w + 2));
    }
    let _ = writeln!(out);
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// True when `--quick` was passed (CI-friendly sizes).
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The value of `--flag <value>` / `--flag=<value>` on the command line,
/// if the flag is present. A flag with no trailing value exits with a
/// diagnostic — every value-carrying bench flag shares this behavior.
pub fn arg_value(flag: &str) -> Option<String> {
    match arg_value_in(std::env::args(), flag) {
        Ok(v) => v,
        Err(()) => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    }
}

/// Testable core of [`arg_value`]: `Err(())` means the flag was present
/// with no value.
fn arg_value_in(
    mut args: impl Iterator<Item = String>,
    flag: &str,
) -> Result<Option<String>, ()> {
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().map(Some).ok_or(());
        }
        if let Some(v) = a.strip_prefix(flag).and_then(|rest| rest.strip_prefix('=')) {
            return Ok(Some(v.to_string()));
        }
    }
    Ok(None)
}

/// Parse `--topo <kind>` into the sweep bins' rival-topology selection
/// (`dv`, `fattree`, `minpath` — see `dv_switch::TopoKind::parse` for
/// the accepted spellings). Returns `None` when the flag is absent (bins
/// default to the Data Vortex); exits with a diagnostic on an unknown
/// kind.
pub fn topo() -> Option<dv_switch::TopoKind> {
    let spec = arg_value("--topo")?;
    match dv_switch::TopoKind::parse(&spec) {
        Some(kind) => Some(kind),
        None => {
            eprintln!("unknown --topo {spec:?} (expected dv, fattree, or minpath)");
            std::process::exit(2);
        }
    }
}

/// True when `--serial` was passed: run sweeps on the serial driver
/// instead of the (byte-identical) parallel one. CI uses this to `cmp`
/// the two paths' JSON artifacts.
pub fn serial() -> bool {
    std::env::args().any(|a| a == "--serial")
}

/// Parse `--faults <spec>` / `--faults=<spec>` into a deterministic fault
/// plan (see `dv_core::fault::FaultPlan::parse` for the grammar, e.g.
/// `seed=7,fifodrop=0.02`). Returns `None` when the flag is absent; exits
/// with a diagnostic on a malformed spec.
pub fn faults() -> Option<dv_core::fault::FaultPlan> {
    let spec = arg_value("--faults")?;
    match dv_core::fault::FaultPlan::parse(&spec) {
        Ok(plan) => Some(plan),
        Err(e) => {
            eprintln!("invalid --faults spec {spec:?}: {e}");
            std::process::exit(2);
        }
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn arg_value_accepts_both_flag_forms() {
        assert_eq!(
            arg_value_in(args(&["bin", "--topo", "fattree"]), "--topo"),
            Ok(Some("fattree".into()))
        );
        assert_eq!(
            arg_value_in(args(&["bin", "--quick", "--topo=minpath"]), "--topo"),
            Ok(Some("minpath".into()))
        );
        assert_eq!(arg_value_in(args(&["bin", "--quick"]), "--topo"), Ok(None));
        // `--topology x` must not satisfy a `--topo` lookup.
        assert_eq!(arg_value_in(args(&["bin", "--topology", "x"]), "--topo"), Ok(None));
        assert_eq!(arg_value_in(args(&["bin", "--topo"]), "--topo"), Err(()));
    }

    #[test]
    fn table_renders_aligned() {
        let t = table(
            &["name", "value"],
            &[vec!["a".into(), "1.0".into()], vec!["long-name".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name") && lines[3].contains("long-name"));
    }
}
