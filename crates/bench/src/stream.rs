//! Streaming telemetry: the `dv-events-v1` JSONL stream every benchmark
//! binary can emit behind `--stream <path|->`.
//!
//! The stream is a line-oriented JSON log of delta-compressed metric
//! samples taken at deterministic **virtual-time** intervals (see
//! `dv_core::metrics::Timeseries`): one header line, one line per
//! non-empty sample, one end line.
//!
//! ```json
//! {"schema":"dv-events-v1","bench":"fig6","quick":true,"interval_ps":10000000,"nodes":4}
//! {"event":"sample","seq":0,"t_ps":10000000,"delta":{ ...MetricsSnapshot... }}
//! {"event":"end","t_ps":123456789,"samples":42,"fnv":1234567890123}
//! ```
//!
//! Because sampling is keyed purely to virtual time — the scheduler's
//! event clock, never the host clock — two runs of the same seeded
//! workload produce **byte-identical** streams; CI `cmp`s repeated
//! streams the same way it compares trace hashes. The `fnv` field of the
//! end record is an FNV-1a hash over every sample line (including the
//! trailing newline), so a consumer can verify a stream without
//! re-rendering it.

use std::io::Write as _;
use std::sync::{Arc, Mutex};

use dv_core::json::Json;
use dv_core::metrics::{MetricsRegistry, MetricsSnapshot, TimeseriesSample};
use dv_core::time::{us, Time};

/// FNV-1a offset basis (the same constants as `MetricsSnapshot::fnv_hash`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Default sampling interval: 10 µs of virtual time.
const DEFAULT_INTERVAL: Time = us(10);
/// Samples retained in the in-memory ring (the sink sees every sample
/// regardless; the ring only serves post-run inspection).
const RING_CAPACITY: usize = 4096;

/// The `--stream <path|->` (or `--stream=path`) argument, if present.
/// `-` streams to stdout.
pub fn stream_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--stream" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--stream requires a path (or `-` for stdout)");
                std::process::exit(2);
            }));
        }
        if let Some(p) = a.strip_prefix("--stream=") {
            return Some(p.to_string());
        }
    }
    None
}

/// The `--stream-interval <us>` argument (virtual microseconds between
/// samples), defaulting to 10 µs.
pub fn stream_interval_ps() -> Time {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let v = if a == "--stream-interval" {
            args.next()
        } else {
            a.strip_prefix("--stream-interval=").map(str::to_string)
        };
        if let Some(v) = v {
            match v.parse::<u64>() {
                Ok(n) if n > 0 => return us(n),
                _ => {
                    eprintln!("--stream-interval requires a positive integer (microseconds)");
                    std::process::exit(2);
                }
            }
        }
    }
    DEFAULT_INTERVAL
}

/// Shared sink state: the output, plus the running FNV over sample lines.
struct SinkState {
    out: Box<dyn std::io::Write + Send>,
    fnv: u64,
    samples: u64,
}

impl SinkState {
    /// Write one line; fold it into the stream hash when `hashed`
    /// (sample lines are hashed, the header and end lines are not — the
    /// end line *carries* the hash).
    fn line(&mut self, text: &str, hashed: bool) {
        if hashed {
            for b in text.bytes().chain(std::iter::once(b'\n')) {
                self.fnv ^= b as u64;
                self.fnv = self.fnv.wrapping_mul(FNV_PRIME);
            }
            self.samples += 1;
        }
        if writeln!(self.out, "{text}").and_then(|_| self.out.flush()).is_err() {
            // A closed pipe (e.g. `fig6 --stream - | head`) is not an
            // error worth failing the benchmark over.
            std::process::exit(0);
        }
    }
}

/// A live `dv-events-v1` emitter bound to one registry.
///
/// Created by [`Streamer::attach`] when `--stream` was passed: writes the
/// header, attaches a virtual-time series to the registry, and points the
/// series sink at the output. The benchmark runs its instrumented
/// workload, then calls [`Streamer::finish`] with the run's end time.
pub struct Streamer {
    metrics: Arc<MetricsRegistry>,
    state: Arc<Mutex<SinkState>>,
    interval_ps: Time,
}

impl Streamer {
    /// Attach a stream to `metrics` if `--stream` was passed. Writes the
    /// header line immediately; every subsequent virtual-time sample goes
    /// straight to the output as it is taken.
    pub fn attach(metrics: &Arc<MetricsRegistry>, bench: &str, nodes: usize) -> Option<Self> {
        let path = stream_path()?;
        let out: Box<dyn std::io::Write + Send> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            match std::fs::File::create(&path) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("failed to create stream file {path}: {e}");
                    std::process::exit(1);
                }
            }
        };
        let interval_ps = stream_interval_ps();
        let state = Arc::new(Mutex::new(SinkState { out, fnv: FNV_OFFSET, samples: 0 }));
        let header = Json::Obj(vec![
            ("schema".to_string(), Json::str("dv-events-v1")),
            ("bench".to_string(), Json::str(bench)),
            ("quick".to_string(), Json::Bool(crate::quick())),
            ("interval_ps".to_string(), Json::U64(interval_ps)),
            ("nodes".to_string(), Json::U64(nodes as u64)),
        ]);
        state.lock().unwrap().line(&header.render(), false);
        metrics.attach_series(interval_ps, RING_CAPACITY);
        let sink_state = Arc::clone(&state);
        metrics.set_series_sink(move |s| {
            sink_state.lock().unwrap().line(&render_sample(s), true);
        });
        Some(Self { metrics: Arc::clone(metrics), state, interval_ps })
    }

    /// The sampling interval (virtual picoseconds).
    pub fn interval_ps(&self) -> Time {
        self.interval_ps
    }

    /// The registry this stream samples.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Record the final sample at virtual time `end` (after all
    /// end-of-run publishes) and write the end line. Consumes the
    /// streamer; the registry keeps its cumulative totals for `--json`.
    pub fn finish(self, end: Time) {
        self.metrics.finish_series(end);
        self.metrics.take_series();
        let mut st = self.state.lock().unwrap();
        let line = Json::Obj(vec![
            ("event".to_string(), Json::str("end")),
            ("t_ps".to_string(), Json::U64(end)),
            ("samples".to_string(), Json::U64(st.samples)),
            ("fnv".to_string(), Json::U64(st.fnv)),
        ])
        .render();
        st.line(&line, false);
    }
}

/// Canonical sample line: `{"event":"sample","seq":…,"t_ps":…,"delta":…}`.
fn render_sample(s: &TimeseriesSample) -> String {
    Json::Obj(vec![
        ("event".to_string(), Json::str("sample")),
        ("seq".to_string(), Json::U64(s.seq)),
        ("t_ps".to_string(), Json::U64(s.t_ps)),
        ("delta".to_string(), s.delta.to_json()),
    ])
    .render()
}

/// One parsed line of a `dv-events-v1` stream.
pub enum StreamLine {
    /// The header record.
    Header(StreamHeader),
    /// One delta-compressed sample.
    Sample(StreamSample),
    /// The end record.
    End(StreamEnd),
}

/// Parsed header record.
#[derive(Debug, Clone)]
pub struct StreamHeader {
    /// The emitting benchmark binary.
    pub bench: String,
    /// Whether the run used `--quick` sizes.
    pub quick: bool,
    /// Sampling interval, virtual picoseconds.
    pub interval_ps: Time,
    /// Cluster/port count of the streamed run.
    pub nodes: u64,
}

/// Parsed sample record.
pub struct StreamSample {
    /// Sample index (0-based, gap-free).
    pub seq: u64,
    /// Virtual time of the sample boundary.
    pub t_ps: Time,
    /// Everything recorded in the interval ending at `t_ps`.
    pub delta: MetricsSnapshot,
}

/// Parsed end record.
#[derive(Debug, Clone, Copy)]
pub struct StreamEnd {
    /// Virtual time of the run's final sample.
    pub t_ps: Time,
    /// Sample lines in the stream.
    pub samples: u64,
    /// FNV-1a over every sample line (incl. trailing newlines).
    pub fnv: u64,
}

/// Parse one line of a `dv-events-v1` stream.
pub fn parse_line(line: &str) -> Result<StreamLine, String> {
    let j = Json::parse(line).map_err(|e| format!("bad stream line: {e:?}"))?;
    let u = |key: &str| {
        j.get(key).and_then(Json::as_u64).ok_or_else(|| format!("line is missing `{key}`"))
    };
    if let Some(schema) = j.get("schema").and_then(Json::as_str) {
        if schema != "dv-events-v1" {
            return Err(format!("unsupported stream schema {schema:?}"));
        }
        return Ok(StreamLine::Header(StreamHeader {
            bench: j.get("bench").and_then(Json::as_str).unwrap_or("?").to_string(),
            quick: matches!(j.get("quick"), Some(Json::Bool(true))),
            interval_ps: u("interval_ps")?,
            nodes: u("nodes")?,
        }));
    }
    match j.get("event").and_then(Json::as_str) {
        Some("sample") => Ok(StreamLine::Sample(StreamSample {
            seq: u("seq")?,
            t_ps: u("t_ps")?,
            delta: MetricsSnapshot::from_json(
                j.get("delta").ok_or("sample without `delta`")?,
            )?,
        })),
        Some("end") => {
            Ok(StreamLine::End(StreamEnd { t_ps: u("t_ps")?, samples: u("samples")?, fnv: u("fnv")? }))
        }
        other => Err(format!("unknown stream event {other:?}")),
    }
}

/// A whole stream, parsed (replay / reporting).
pub struct StreamDoc {
    /// The header (first line).
    pub header: StreamHeader,
    /// All samples, in order.
    pub samples: Vec<StreamSample>,
    /// The end record, when the stream ran to completion.
    pub end: Option<StreamEnd>,
}

/// Parse a complete stream; verifies the end record's sample count when
/// present.
pub fn parse_stream(text: &str) -> Result<StreamDoc, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let first = lines.next().ok_or("empty stream")?;
    let StreamLine::Header(header) = parse_line(first)? else {
        return Err("stream does not start with a dv-events-v1 header".to_string());
    };
    let mut samples = Vec::new();
    let mut end = None;
    for line in lines {
        match parse_line(line)? {
            StreamLine::Header(_) => return Err("duplicate stream header".to_string()),
            StreamLine::Sample(s) => {
                if end.is_some() {
                    return Err("sample after end record".to_string());
                }
                samples.push(s);
            }
            StreamLine::End(e) => end = Some(e),
        }
    }
    if let Some(e) = &end {
        if e.samples != samples.len() as u64 {
            return Err(format!(
                "end record claims {} samples, stream has {}",
                e.samples,
                samples.len()
            ));
        }
    }
    Ok(StreamDoc { header, samples, end })
}

/// The per-interval signals `dv-report --timeline` and `dv-top` read off
/// a sample delta: traffic, drops, deflections, backpressure, and the
/// instantaneous FIFO/load gauges.
pub struct IntervalSignals {
    /// Packets offered to the network in the interval (event-model
    /// `api.net.packets` plus cycle-model `switch.cycle.injected`).
    pub packets: u64,
    /// Packets lost in the interval: VIC FIFO overflows plus injected
    /// link faults plus sweep-level fault drops.
    pub drops: u64,
    /// Deflections in the interval (analytic-model expected hops
    /// observed per traversal, plus cycle-model contention deflections).
    pub deflections: u64,
    /// Sender-side backpressure rejections in the interval.
    pub backpressure: u64,
    /// Deepest VIC surprise-FIFO at the sample boundary (`None` when the
    /// stream carries no depth gauges, e.g. pure cycle-sim streams).
    pub fifo_depth: Option<f64>,
    /// Instantaneous switch load in `[0, 1]` (event model) or the peak
    /// per-cylinder mean occupancy (cycle model).
    pub load: Option<f64>,
}

impl IntervalSignals {
    /// Extract the signals from one sample's delta.
    pub fn from_delta(delta: &MetricsSnapshot) -> Self {
        let hist_total = |name: &str| {
            delta
                .histograms()
                .iter()
                .filter(|((n, _), _)| n == name)
                .map(|(_, h)| h.total)
                .sum::<u64>()
        };
        let gauge_named = |name: &str| {
            delta
                .gauges()
                .iter()
                .filter(|((n, _), _)| n == name)
                .map(|(_, &v)| v)
                .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v))))
        };
        Self {
            packets: delta.counter_total("api.net.packets")
                + delta.counter_total("switch.cycle.injected"),
            drops: delta.counter_total("vic.fifo.drops")
                + delta.counter_total("fault.link.drops")
                + delta.counter_total("switch.sweep.fault_drops"),
            deflections: hist_total("switch.model.deflection_hops")
                + delta.counter_total("switch.cycle.contention_deflections"),
            backpressure: delta.counter_total("api.fifo.backpressure_rejects"),
            fifo_depth: gauge_named("vic.fifo.depth"),
            load: gauge_named("switch.load").or_else(|| gauge_named("switch.cycle.mean_occupancy")),
        }
    }
}

/// Render a parsed stream as a virtual-time timeline table — the
/// `dv-report --timeline` view. One row per sample: interval traffic,
/// drops, deflections, backpressure, FIFO depth, and a load bar.
pub fn render_timeline(doc: &StreamDoc) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let h = &doc.header;
    let _ = writeln!(
        out,
        "stream: {} ({} nodes, {} µs sampling{})",
        h.bench,
        h.nodes,
        h.interval_ps / us(1).max(1),
        if h.quick { ", --quick" } else { "" },
    );
    // Deltas omit unchanged gauges, so the instantaneous columns carry
    // the last-seen value forward.
    let mut last_fifo = None;
    let mut last_load = None;
    let rows: Vec<Vec<String>> = doc
        .samples
        .iter()
        .map(|s| {
            let sig = IntervalSignals::from_delta(&s.delta);
            last_fifo = sig.fifo_depth.or(last_fifo);
            last_load = sig.load.or(last_load);
            let load = last_load.unwrap_or(0.0);
            let bar = "#".repeat((load.clamp(0.0, 1.0) * 10.0).round() as usize);
            vec![
                format!("{:.1}", s.t_ps as f64 / us(1) as f64),
                sig.packets.to_string(),
                sig.drops.to_string(),
                sig.deflections.to_string(),
                sig.backpressure.to_string(),
                last_fifo.map_or("-".to_string(), |d| format!("{d:.0}")),
                format!("{load:.3} {bar}"),
            ]
        })
        .collect();
    let _ = write!(
        out,
        "{}",
        crate::table(&["t (µs)", "packets", "drops", "defl", "backpr", "fifo", "load"], &rows)
    );
    if let Some(e) = &doc.end {
        let _ = writeln!(
            out,
            "end: t = {:.1} µs, {} samples, fnv {:016x}",
            e.t_ps as f64 / us(1) as f64,
            e.samples,
            e.fnv
        );
    } else {
        let _ = writeln!(out, "(stream has no end record — run still live or truncated)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_lines_round_trip() {
        let header = r#"{"schema":"dv-events-v1","bench":"fig6","quick":true,"interval_ps":10000000,"nodes":4}"#;
        let StreamLine::Header(h) = parse_line(header).unwrap() else {
            panic!("not a header");
        };
        assert_eq!((h.bench.as_str(), h.quick, h.interval_ps, h.nodes), ("fig6", true, us(10), 4));

        let sample = r#"{"event":"sample","seq":0,"t_ps":10000000,"delta":{"counters":[{"name":"api.net.packets","value":7}],"gauges":[],"histograms":[]}}"#;
        let StreamLine::Sample(s) = parse_line(sample).unwrap() else {
            panic!("not a sample");
        };
        assert_eq!(s.delta.counter("api.net.packets", &[]), Some(7));

        let end = r#"{"event":"end","t_ps":99,"samples":1,"fnv":123}"#;
        let StreamLine::End(e) = parse_line(end).unwrap() else {
            panic!("not an end");
        };
        assert_eq!((e.t_ps, e.samples, e.fnv), (99, 1, 123));

        let doc = parse_stream(&format!("{header}\n{sample}\n{end}\n")).unwrap();
        assert_eq!(doc.samples.len(), 1);
        assert!(doc.end.is_some());
    }

    #[test]
    fn parse_rejects_malformed_streams() {
        assert!(parse_stream("").is_err());
        assert!(parse_stream("{\"event\":\"sample\"}").is_err(), "missing header");
        let header = r#"{"schema":"dv-events-v1","bench":"x","quick":false,"interval_ps":1,"nodes":1}"#;
        let end_claims_two = format!("{header}\n{}", r#"{"event":"end","t_ps":9,"samples":2,"fnv":0}"#);
        assert!(parse_stream(&end_claims_two).is_err(), "sample-count mismatch");
        assert!(parse_line(r#"{"event":"wat"}"#).is_err());
        assert!(parse_line(r#"{"schema":"dv-events-v2","interval_ps":1,"nodes":1}"#).is_err());
    }
}
