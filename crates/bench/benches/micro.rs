//! Micro-benchmarks of the hot substrates (self-contained harness).
//!
//! These measure the *simulator's* own performance (real wall time), not
//! simulated metrics: the DES engine, the cycle-accurate switch, and the
//! serial computational kernels the benchmarks execute for real. The
//! harness is deliberately dependency-free: each case is warmed up once,
//! then timed over enough iterations to fill ~0.3 s, reporting the mean
//! per-iteration time and throughput.
//!
//! Wall-clock use is confined to this crate (`dv-bench`); everything under
//! simulation uses virtual time only — `dv-lint` rule `DV-W002` enforces
//! that split.

use std::hint::black_box;
use std::time::Instant;

use dv_core::rng::{HpccStream, SplitMix64};
use dv_kernels::fft::{fft_in_place, Complex};
use dv_kernels::graph::{kronecker_edges, Csr, GraphConfig};
use dv_sim::{Port, Sim};
use dv_switch::{SwitchSim, Topology};

/// Time `f` adaptively: warm up, pick an iteration count that fills the
/// budget, report mean ns/iter (and per-element throughput if `elems` set).
fn bench<R>(name: &str, elems: Option<u64>, mut f: impl FnMut() -> R) {
    // Warm-up + calibration.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let iters = (300_000_000 / once).clamp(1, 10_000);
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
    let rate = elems
        .map(|e| format!("  {:>10.1} Melem/s", e as f64 / per_iter * 1e3))
        .unwrap_or_default();
    println!("{name:<32} {:>12.0} ns/iter  x{iters}{rate}", per_iter);
}

fn bench_des_engine() {
    bench("des/event_schedule_drain_10k", Some(10_000), || {
        let sim = Sim::new();
        sim.spawn("p", |ctx| {
            for _ in 0..10_000 {
                ctx.delay(100);
            }
        });
        sim.run()
    });
    bench("des/port_send_recv_2k", Some(2_000), || {
        let sim = Sim::new();
        let port: Port<u64> = Port::new();
        let (p1, p2) = (port.clone(), port.clone());
        sim.spawn("recv", move |ctx| {
            for _ in 0..2_000 {
                let _ = p1.recv(ctx);
            }
        });
        sim.spawn("send", move |ctx| {
            for i in 0..2_000 {
                p2.send_delayed(ctx, 500, i);
                ctx.delay(100);
            }
        });
        sim.run()
    });
}

fn bench_switch_cycle() {
    bench("switch/uniform_load_1k_cycles", None, || {
        let mut sw = SwitchSim::new(Topology::new(8, 4));
        let mut rng = SplitMix64::new(7);
        for p in 0..32 {
            for _ in 0..8 {
                sw.enqueue(p, rng.next_below(32) as usize, 0);
            }
        }
        for _ in 0..1_000 {
            let _ = sw.step();
        }
        sw.ejected()
    });
}

fn bench_fft_kernel() {
    for log_n in [10u32, 14] {
        let n = 1usize << log_n;
        let mut rng = SplitMix64::new(1);
        let data: Vec<Complex> =
            (0..n).map(|_| Complex::new(rng.next_f64(), rng.next_f64())).collect();
        bench(&format!("fft/radix2_2^{log_n}"), Some(n as u64), || {
            let mut d = data.clone();
            fft_in_place(&mut d);
            d[0]
        });
    }
}

fn bench_graph_substrate() {
    let cfg = GraphConfig { scale: 14, edgefactor: 8, seed: 3 };
    bench("graph/kronecker_scale14", Some(cfg.edges() as u64), || kronecker_edges(&cfg).len());
    let edges = kronecker_edges(&cfg);
    bench("graph/csr_build_scale14", Some(cfg.edges() as u64), || {
        Csr::build(cfg.vertices(), &edges).vertices()
    });
}

fn bench_hpcc_stream() {
    bench("rng/hpcc_stream_100k", Some(100_000), || {
        let mut s = HpccStream::starting_at(12345);
        let mut acc = 0u64;
        for _ in 0..100_000 {
            acc ^= s.next_u64();
        }
        acc
    });
}

fn main() {
    bench_des_engine();
    bench_switch_cycle();
    bench_fft_kernel();
    bench_graph_substrate();
    bench_hpcc_stream();
}
