//! Criterion micro-benchmarks of the hot substrates.
//!
//! These measure the *simulator's* own performance (real wall time), not
//! simulated metrics: the DES engine, the cycle-accurate switch, and the
//! serial computational kernels the benchmarks execute for real.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use dv_core::rng::{HpccStream, SplitMix64};
use dv_kernels::fft::{fft_in_place, Complex};
use dv_kernels::graph::{kronecker_edges, Csr, GraphConfig};
use dv_sim::{Port, Sim};
use dv_switch::{SwitchSim, Topology};

fn bench_des_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("event_schedule_drain_10k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.spawn("p", |ctx| {
                for _ in 0..10_000 {
                    ctx.delay(100);
                }
            });
            sim.run()
        });
    });
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("port_send_recv_2k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let port: Port<u64> = Port::new();
            let (p1, p2) = (port.clone(), port.clone());
            sim.spawn("recv", move |ctx| {
                for _ in 0..2_000 {
                    let _ = p1.recv(ctx);
                }
            });
            sim.spawn("send", move |ctx| {
                for i in 0..2_000 {
                    p2.send_delayed(ctx, 500, i);
                    ctx.delay(100);
                }
            });
            sim.run()
        });
    });
    g.finish();
}

fn bench_switch_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch");
    g.bench_function("uniform_load_1k_cycles", |b| {
        b.iter_batched(
            || {
                let mut sw = SwitchSim::new(Topology::new(8, 4));
                let mut rng = SplitMix64::new(7);
                for p in 0..32 {
                    for _ in 0..8 {
                        sw.enqueue(p, rng.next_below(32) as usize, 0);
                    }
                }
                sw
            },
            |mut sw| {
                for _ in 0..1_000 {
                    let _ = sw.step();
                }
                sw.ejected()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_fft_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for log_n in [10u32, 14] {
        let n = 1usize << log_n;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("radix2_2^{log_n}"), |b| {
            let mut rng = SplitMix64::new(1);
            let data: Vec<Complex> =
                (0..n).map(|_| Complex::new(rng.next_f64(), rng.next_f64())).collect();
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    fft_in_place(&mut d);
                    d[0]
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_graph_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    let cfg = GraphConfig { scale: 14, edgefactor: 8, seed: 3 };
    g.throughput(Throughput::Elements(cfg.edges() as u64));
    g.bench_function("kronecker_scale14", |b| {
        b.iter(|| kronecker_edges(&cfg).len());
    });
    let edges = kronecker_edges(&cfg);
    g.bench_function("csr_build_scale14", |b| {
        b.iter(|| Csr::build(cfg.vertices(), &edges).vertices());
    });
    g.finish();
}

fn bench_hpcc_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("hpcc_stream_100k", |b| {
        b.iter(|| {
            let mut s = HpccStream::starting_at(12345);
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc ^= s.next_u64();
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_des_engine,
    bench_switch_cycle,
    bench_fft_kernel,
    bench_graph_substrate,
    bench_hpcc_stream
);
criterion_main!(benches);
