//! Two-sided point-to-point messaging with tag matching.
//!
//! The protocol split mirrors openmpi-1.8 over InfiniBand verbs:
//!
//! * **Eager** (≤ `MpiParams::eager_limit`): the sender copies through a
//!   bounce buffer, fires the message, and completes immediately; the
//!   payload travels with the envelope and waits in the receiver's
//!   unexpected queue if no recv is posted.
//! * **Rendezvous** (> limit): the sender publishes an RTS control
//!   message; the matching recv answers CTS; the data then streams in
//!   registered chunks, each paying a per-chunk overhead — which is why
//!   large-message efficiency tops out near 72 % of the link peak, as the
//!   paper's Figure 3 shows for MPI ping-pong.
//!
//! Matching is `(source, tag)` with wildcard support, serviced in arrival
//! order from the unexpected queue (per-pair ordering is preserved by the
//! FIFO fabric pipes).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dv_core::sync::Mutex;

use dv_core::config::MpiParams;
use dv_core::metrics::MetricsRegistry;
use dv_core::time::{self, Time};
use dv_core::trace::{State, Tracer};
use dv_sim::{Port, SimCtx, WaitSet};

use crate::fabric::IbFabric;
use crate::payload::Payload;
use crate::Tag;

/// A received message.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// The data.
    pub payload: Payload,
    /// Virtual time the send was initiated.
    pub sent_at: Time,
}

enum Wire {
    Eager(Envelope),
    Rts { src: usize, tag: Tag, msg_id: u64 },
    Data { msg_id: u64, env: Envelope },
}

struct ReqState {
    done: bool,
    waiters: WaitSet,
}

/// Handle for a nonblocking send; complete it with [`Comm::wait`].
pub struct Request {
    state: Arc<Mutex<ReqState>>,
}

impl Request {
    fn completed() -> Self {
        Self { state: Arc::new(Mutex::new(ReqState { done: true, waiters: WaitSet::new() })) }
    }
    fn pending() -> Self {
        Self { state: Arc::new(Mutex::new(ReqState { done: false, waiters: WaitSet::new() })) }
    }
    /// True once the operation completed.
    pub fn is_done(&self) -> bool {
        self.state.lock().done
    }
}

struct PendingSend {
    src: usize,
    dst: usize,
    env: Envelope,
    bytes: u64,
    req: Arc<Mutex<ReqState>>,
}

/// Shared state of the MPI world (one per cluster run).
pub struct World {
    fabric: IbFabric,
    params: MpiParams,
    ports: Vec<Port<Wire>>,
    pending: Mutex<BTreeMap<u64, PendingSend>>,
    next_id: AtomicU64,
    tracer: Arc<Tracer>,
    metrics: Arc<MetricsRegistry>,
}

impl World {
    /// Build the world described by a [`SimSpec`](dv_core::spec::SimSpec):
    /// the InfiniBand fabric comes from `spec.machine.ib`, MPI tuning from
    /// `spec.machine.mpi`, tracing and metrics from the spec's attachments.
    pub fn from_spec(spec: &dv_core::spec::SimSpec) -> Arc<Self> {
        let fabric = IbFabric::new(spec.nodes, spec.machine.ib.clone());
        Self::from_parts(
            fabric,
            spec.machine.mpi.clone(),
            Arc::clone(&spec.tracer),
            Arc::clone(&spec.metrics),
        )
    }

    /// Build a world from explicit parts; point-to-point traffic is
    /// recorded under `mpi.*` and collectives under `mpi.coll.*` when the
    /// registry is enabled.
    pub fn from_parts(
        fabric: IbFabric,
        params: MpiParams,
        tracer: Arc<Tracer>,
        metrics: Arc<MetricsRegistry>,
    ) -> Arc<Self> {
        let nodes = fabric.nodes();
        Arc::new(Self {
            fabric,
            params,
            ports: (0..nodes).map(|_| Port::new()).collect(),
            pending: Mutex::new_named("mpi.pending", BTreeMap::new()),
            next_id: AtomicU64::new(1),
            tracer,
            metrics,
        })
    }

    /// The fabric (for diagnostics).
    pub fn fabric(&self) -> &IbFabric {
        &self.fabric
    }

    /// Per-rank communicator.
    pub fn comm(self: &Arc<Self>, rank: usize) -> Comm {
        assert!(rank < self.ports.len());
        Comm { world: Arc::clone(self), rank, unexpected: Mutex::new(Vec::new()) }
    }
}

/// One rank's communicator (used by exactly one simulated process).
pub struct Comm {
    world: Arc<World>,
    rank: usize,
    unexpected: Mutex<Vec<(Time, Wire)>>,
}

impl Comm {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.world.ports.len()
    }

    /// The tracer attached to this world.
    pub fn tracer(&self) -> &Tracer {
        &self.world.tracer
    }

    /// The metrics registry attached to this world.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.world.metrics
    }

    /// MPI runtime parameters.
    pub fn params(&self) -> &MpiParams {
        &self.world.params
    }

    fn port(&self) -> &Port<Wire> {
        &self.world.ports[self.rank]
    }

    /// Nonblocking send. Eager messages complete immediately; rendezvous
    /// sends complete when the CTS arrives and the data has left.
    pub fn isend(&self, ctx: &SimCtx, dst: usize, tag: Tag, payload: Payload) -> Request {
        let t0 = ctx.now();
        let p = &self.world.params;
        ctx.delay(p.overhead_send);
        let bytes = payload.len_bytes();
        let env_bytes = bytes + 64; // header/envelope on the wire
        let eager = bytes <= p.eager_limit;
        {
            let m = &self.world.metrics;
            let path = [("path", if eager { "eager" } else { "rndv" }.into())];
            m.incr_labeled("mpi.msgs", &path, 1);
            m.incr_labeled("mpi.bytes", &path, env_bytes);
            m.observe("mpi.msg_bytes", bytes);
        }
        let req = if eager {
            // Bounce-buffer copy on the send side.
            ctx.delay(time::transfer_time(bytes, p.copy_gbps));
            let sent_at = ctx.now();
            let arrival = self.world.fabric.transfer(sent_at, self.rank, dst, env_bytes, 0);
            let env = Envelope { src: self.rank, tag, payload, sent_at };
            ctx.with_kernel(|k| self.world.ports[dst].deliver_at(k, arrival, Wire::Eager(env)));
            self.world.tracer.message(self.rank, dst, sent_at, arrival, env_bytes);
            Request::completed()
        } else {
            let msg_id = self.world.next_id.fetch_add(1, Ordering::Relaxed);
            let sent_at = ctx.now();
            let rts_arrival = self.world.fabric.transfer(sent_at, self.rank, dst, 64, 0);
            ctx.with_kernel(|k| {
                self.world.ports[dst].deliver_at(
                    k,
                    rts_arrival,
                    Wire::Rts { src: self.rank, tag, msg_id },
                )
            });
            let req = Request::pending();
            self.world.pending.lock().insert(
                msg_id,
                PendingSend {
                    src: self.rank,
                    dst,
                    env: Envelope { src: self.rank, tag, payload, sent_at },
                    bytes: env_bytes,
                    req: Arc::clone(&req.state),
                },
            );
            req
        };
        self.world.tracer.span(self.rank, State::Send, t0, ctx.now());
        req
    }

    /// Blocking send (true `MPI_Send` semantics: a rendezvous send does
    /// not return until the receiver has posted the matching recv).
    pub fn send(&self, ctx: &SimCtx, dst: usize, tag: Tag, payload: Payload) {
        let req = self.isend(ctx, dst, tag, payload);
        self.wait(ctx, req);
    }

    /// Wait for a request to complete.
    pub fn wait(&self, ctx: &SimCtx, req: Request) {
        let t0 = ctx.now();
        loop {
            {
                let s = req.state.lock();
                if s.done {
                    break;
                }
                s.waiters.register(ctx);
            }
            ctx.park();
        }
        if ctx.now() > t0 {
            self.world.tracer.span(self.rank, State::Wait, t0, ctx.now());
        }
    }

    /// Wait for all requests.
    pub fn wait_all(&self, ctx: &SimCtx, reqs: Vec<Request>) {
        for r in reqs {
            self.wait(ctx, r);
        }
    }

    fn drain(&self) {
        let mut unex = self.unexpected.lock();
        while let Some(m) = self.port().try_recv() {
            unex.push(m);
        }
    }

    fn find_match(&self, src: Option<usize>, tag: Option<Tag>) -> Option<(Time, Wire)> {
        let mut unex = self.unexpected.lock();
        let idx = unex.iter().position(|(_, w)| match w {
            Wire::Eager(env) => {
                src.is_none_or(|s| s == env.src) && tag.is_none_or(|t| t == env.tag)
            }
            Wire::Rts { src: s, tag: t, .. } => {
                src.is_none_or(|x| x == *s) && tag.is_none_or(|x| x == *t)
            }
            Wire::Data { .. } => false,
        })?;
        Some(unex.remove(idx))
    }

    fn take_data(&self, msg_id: u64) -> Option<Envelope> {
        let mut unex = self.unexpected.lock();
        let idx = unex.iter().position(
            |(_, w)| matches!(w, Wire::Data { msg_id: m, .. } if *m == msg_id),
        )?;
        match unex.remove(idx).1 {
            Wire::Data { env, .. } => Some(env),
            _ => unreachable!(),
        }
    }

    /// Release a rendezvous transfer: the CTS flies back to the sender's
    /// NIC, which then streams the data in registered chunks.
    fn send_cts(&self, ctx: &SimCtx, msg_id: u64) {
        let world = Arc::clone(&self.world);
        let cts_flight = self.world.fabric.params().wire_latency;
        ctx.with_kernel(move |k| {
            let at = k.now() + cts_flight;
            k.call_at(at, move |k| {
                let Some(p) = world.pending.lock().remove(&msg_id) else {
                    panic!("CTS for unknown rendezvous message {msg_id}");
                };
                let params = &world.params;
                // Pipeline inefficiency: the data streams at
                // rndv_efficiency x link rate, plus the handshake.
                let wire = dv_core::time::transfer_time(p.bytes, world.fabric.params().link_gbps);
                let slowdown = (wire as f64 * (1.0 / params.rndv_efficiency - 1.0)) as dv_core::time::Time;
                let extra = slowdown + params.rndv_handshake;
                let arrival = world.fabric.transfer(k.now(), p.src, p.dst, p.bytes, extra);
                world.tracer.message(p.src, p.dst, p.env.sent_at, arrival, p.bytes);
                world.ports[p.dst].deliver_at(k, arrival, Wire::Data { msg_id, env: p.env });
                // The sender's MPI_Send returns when its buffer is free —
                // when the data has fully left the sender.
                let req = p.req;
                k.call_at(arrival, move |k| {
                    let mut r = req.lock();
                    r.done = true;
                    r.waiters.wake_all(k);
                });
            });
        });
    }

    /// Blocking receive with optional source/tag wildcards.
    pub fn recv(&self, ctx: &SimCtx, src: Option<usize>, tag: Option<Tag>) -> Envelope {
        let t0 = ctx.now();
        let env = loop {
            self.drain();
            if let Some((_, wire)) = self.find_match(src, tag) {
                match wire {
                    Wire::Eager(env) => break env,
                    Wire::Rts { msg_id, .. } => {
                        self.send_cts(ctx, msg_id);
                        // Wait for this specific transfer's data.
                        break loop {
                            self.drain();
                            if let Some(env) = self.take_data(msg_id) {
                                break env;
                            }
                            let (at, m) = self.port().recv(ctx);
                            self.unexpected.lock().push((at, m));
                        };
                    }
                    Wire::Data { .. } => unreachable!("data never matches a posted recv"),
                }
            }
            let (at, m) = self.port().recv(ctx);
            self.unexpected.lock().push((at, m));
        };
        ctx.delay(self.world.params.overhead_recv);
        self.world.tracer.span(self.rank, State::Recv, t0, ctx.now());
        env
    }

    /// Convenience: blocking receive from a specific source and tag.
    pub fn recv_from(&self, ctx: &SimCtx, src: usize, tag: Tag) -> Envelope {
        self.recv(ctx, Some(src), Some(tag))
    }

    /// Nonblocking probe-and-receive: returns a matching *eager* message
    /// if one already arrived. (Rendezvous messages need the blocking path
    /// to run the CTS exchange.)
    pub fn try_recv(&self, ctx: &SimCtx, src: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        self.drain();
        let pos = {
            let unex = self.unexpected.lock();
            unex.iter().position(|(_, w)| match w {
                Wire::Eager(env) => {
                    src.is_none_or(|s| s == env.src) && tag.is_none_or(|t| t == env.tag)
                }
                _ => false,
            })?
        };
        let (_, wire) = self.unexpected.lock().remove(pos);
        match wire {
            Wire::Eager(env) => {
                ctx.delay(self.world.params.overhead_recv);
                Some(env)
            }
            _ => unreachable!(),
        }
    }

    /// Combined send+receive (deadlock-free pairwise exchange).
    pub fn sendrecv(
        &self,
        ctx: &SimCtx,
        dst: usize,
        send_tag: Tag,
        payload: Payload,
        src: usize,
        recv_tag: Tag,
    ) -> Envelope {
        let req = self.isend(ctx, dst, send_tag, payload);
        let env = self.recv_from(ctx, src, recv_tag);
        self.wait(ctx, req);
        env
    }
}
