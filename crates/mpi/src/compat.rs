//! Deprecated constructor shims for the pre-`SimSpec` MPI API.
//!
//! Every constructor here forwards to [`SimSpec`]-based construction and
//! carries `#[deprecated]`; new code should build a [`SimSpec`] and use
//! [`MpiCluster::from_spec`] / [`World::from_spec`]. dv-lint rule DV-W014
//! flags any call site of these names outside this file.

use std::sync::Arc;

use dv_core::config::{MachineConfig, MpiParams};
use dv_core::metrics::MetricsRegistry;
use dv_core::spec::SimSpec;
use dv_core::time::Time;
use dv_core::trace::Tracer;
use dv_sim::SimCtx;

use crate::cluster::MpiCluster;
use crate::comm::{Comm, World};
use crate::fabric::IbFabric;

impl MpiCluster {
    /// Cluster of `nodes` ranks on the paper's machine.
    #[deprecated(since = "0.1.0", note = "build a SimSpec and use MpiCluster::from_spec")]
    pub fn new(nodes: usize) -> Self {
        Self::from_spec(SimSpec::new(nodes))
    }

    /// Enable tracing (for Figure 5 style output).
    #[deprecated(since = "0.1.0", note = "use SimSpec::tracer")]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach a metrics registry.
    #[deprecated(since = "0.1.0", note = "use SimSpec::metrics or SimSpec::instrumented")]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Use a custom machine configuration.
    #[deprecated(since = "0.1.0", note = "use SimSpec::machine")]
    pub fn with_config(mut self, config: MachineConfig) -> Self {
        self.config = config;
        self
    }

    /// Old tuple-shaped entry point: `(elapsed, trace_hash, results)`.
    #[deprecated(since = "0.1.0", note = "use MpiCluster::run, which returns a RunReport")]
    pub fn run_hashed<T, F>(&self, body: F) -> (Time, u64, Vec<T>)
    where
        T: Send + 'static,
        F: Fn(&Comm, &SimCtx) -> T + Send + Sync + 'static,
    {
        let r = self.run(body);
        (r.elapsed, r.trace_hash, r.result)
    }
}

impl World {
    /// Build the world for `nodes` ranks (metrics disabled).
    #[deprecated(since = "0.1.0", note = "build a SimSpec and use World::from_spec")]
    pub fn new(fabric: IbFabric, params: MpiParams, tracer: Arc<Tracer>) -> Arc<Self> {
        Self::from_parts(fabric, params, tracer, MetricsRegistry::disabled_shared())
    }

    /// Build a world with a metrics registry attached.
    #[deprecated(since = "0.1.0", note = "build a SimSpec and use World::from_spec")]
    pub fn new_with_metrics(
        fabric: IbFabric,
        params: MpiParams,
        tracer: Arc<Tracer>,
        metrics: Arc<MetricsRegistry>,
    ) -> Arc<Self> {
        Self::from_parts(fabric, params, tracer, metrics)
    }
}
