//! # mini-mpi — the MPI-over-InfiniBand baseline
//!
//! The paper compares every Data Vortex implementation against an MPI
//! implementation of the same algorithm "running on the same cluster, but
//! using a conventional MPI-over-Infiniband implementation" (openmpi 1.8.3
//! over FDR). This crate is that baseline: a deliberately conventional
//! message-passing runtime on top of the `dv-sim` engine.
//!
//! * [`fabric`] — FDR InfiniBand fat-tree cost model: 6.8 GB/s per-port
//!   links, per-NIC full-duplex pipes, and an aggregate core pipe whose
//!   efficiency for unstructured traffic decays with cluster size
//!   (static-routing losses).
//! * [`comm`] — two-sided point-to-point with tag matching, unexpected
//!   message queue, **eager** protocol below the eager limit (bounce-buffer
//!   copies, fire-and-forget) and **rendezvous** above it (RTS/CTS
//!   handshake, chunked pipelined transfer — which is what caps large
//!   message efficiency at ~72 % of peak, as Figure 3 of the paper shows).
//! * [`coll`] — collectives built from point-to-point algorithms:
//!   dissemination barrier, binomial bcast/reduce, recursive-doubling
//!   allreduce, ring allgather, pairwise-exchange alltoall(v).
//! * [`cluster`] — an SPMD harness: run one closure per rank on the
//!   simulated cluster and collect results.
//!
//! Timing is virtual; payloads are real data (`Payload`), so algorithms
//! built on this runtime compute real answers that tests can validate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod coll;
pub mod comm;
mod compat;
pub mod fabric;
pub mod payload;

pub use cluster::MpiCluster;
pub use coll::ReduceOp;
pub use comm::{Comm, Envelope, Request};
pub use fabric::IbFabric;
pub use payload::Payload;

/// Message tag type.
pub type Tag = u64;

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: Tag = 1 << 60;
