//! SPMD harness: run one closure per rank on the simulated cluster.

use std::sync::Arc;

use dv_core::config::MachineConfig;
use dv_core::metrics::{record_state_totals, MetricsRegistry};
use dv_core::spec::{Engine, RunReport, SimSpec};
use dv_core::trace::Tracer;
use dv_sim::{JoinSlot, Sim, SimCtx};

use crate::comm::{Comm, World};
use crate::fabric::IbFabric;

/// Configuration + entry point for an MPI run. Built from a
/// [`SimSpec`]; [`MpiCluster::run`] returns a [`RunReport`].
///
/// ```
/// use dv_core::spec::SimSpec;
/// use mini_mpi::{MpiCluster, Payload, ReduceOp};
///
/// let report = MpiCluster::from_spec(SimSpec::new(4)).run(|comm, ctx| {
///     let mine = Payload::U64(vec![comm.rank() as u64]);
///     comm.allreduce(ctx, ReduceOp::Sum, mine).into_u64()[0]
/// });
/// assert!(report.result.iter().all(|&r| r == 0 + 1 + 2 + 3));
/// ```
pub struct MpiCluster {
    /// Number of ranks (one per node, as in the paper's runs).
    pub nodes: usize,
    /// Machine parameters.
    pub config: MachineConfig,
    /// Trace recorder (disabled by default).
    pub tracer: Arc<Tracer>,
    /// Metrics registry (disabled by default).
    pub metrics: Arc<MetricsRegistry>,
    /// Scheduler engine (sharded by default).
    pub engine: Engine,
    /// Event-queue shards (0 = auto). Never changes results.
    pub shards: usize,
}

impl MpiCluster {
    /// Build a cluster from a [`SimSpec`] — the only non-deprecated
    /// constructor. Arms the spec's telemetry stream, if one was set.
    pub fn from_spec(mut spec: SimSpec) -> Self {
        spec.arm_stream();
        Self {
            nodes: spec.nodes,
            config: spec.machine,
            tracer: spec.tracer,
            metrics: spec.metrics,
            engine: spec.engine,
            shards: spec.shards,
        }
    }

    /// Run `body` on every rank; returns the per-rank results (rank
    /// order) together with the run evidence: elapsed virtual time, the
    /// event-trace hash (see [`dv_sim::OrderAudit`]; identical
    /// configurations and bodies must produce identical hashes — asserted
    /// by `tests/determinism.rs`), and a snapshot of the attached metrics
    /// registry.
    pub fn run<T, F>(&self, body: F) -> RunReport<Vec<T>>
    where
        T: Send + 'static,
        F: Fn(&Comm, &SimCtx) -> T + Send + Sync + 'static,
    {
        let mut sim = Sim::with_engine(self.engine, self.shards);
        sim.set_metrics(Arc::clone(&self.metrics));
        let fabric = IbFabric::new(self.nodes, self.config.ib.clone());
        let world = World::from_parts(
            fabric,
            self.config.mpi.clone(),
            Arc::clone(&self.tracer),
            Arc::clone(&self.metrics),
        );
        let body = Arc::new(body);
        let slots: Vec<JoinSlot<T>> = (0..self.nodes).map(|_| JoinSlot::new()).collect();
        #[allow(clippy::needless_range_loop)] // rank is also the program's identity
        for rank in 0..self.nodes {
            let comm = world.comm(rank);
            let body = Arc::clone(&body);
            let slot = slots[rank].clone();
            sim.spawn(format!("rank{rank}"), move |ctx| {
                slot.put(body(&comm, ctx));
            });
        }
        let (elapsed, trace_hash) = sim.run_hashed();
        record_state_totals(&self.tracer, &self.metrics);
        let results = slots
            .into_iter()
            .map(|s| s.take().expect("rank did not produce a result"))
            .collect();
        RunReport { result: results, elapsed, trace_hash, snapshot: self.metrics.snapshot() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coll::ReduceOp;
    use crate::payload::Payload;
    use dv_core::time::{as_us_f64, us, Time};

    fn run_n<T: Send + 'static>(
        n: usize,
        body: impl Fn(&Comm, &SimCtx) -> T + Send + Sync + 'static,
    ) -> (Time, Vec<T>) {
        let r = MpiCluster::from_spec(SimSpec::new(n)).run(body);
        (r.elapsed, r.result)
    }

    #[test]
    fn ping_pong_exchanges_real_data() {
        let (elapsed, results) = run_n(2, |comm, ctx| {
            if comm.rank() == 0 {
                comm.send(ctx, 1, 7, Payload::U64(vec![1, 2, 3]));
                comm.recv_from(ctx, 1, 8).payload.into_u64()
            } else {
                let v = comm.recv_from(ctx, 0, 7).payload.into_u64();
                let doubled: Vec<u64> = v.iter().map(|x| x * 2).collect();
                comm.send(ctx, 0, 8, Payload::U64(doubled.clone()));
                doubled
            }
        });
        assert_eq!(results[0], vec![2, 4, 6]);
        assert!(elapsed > 0 && elapsed < us(100), "elapsed {}", as_us_f64(elapsed));
    }

    #[test]
    fn rendezvous_path_moves_large_messages() {
        let n_words = 64 * 1024; // 512 KiB >> eager limit
        let (_, results) = run_n(2, move |comm, ctx| {
            if comm.rank() == 0 {
                let data: Vec<u64> = (0..n_words as u64).collect();
                comm.send(ctx, 1, 1, Payload::U64(data));
                0
            } else {
                let v = comm.recv_from(ctx, 0, 1).payload.into_u64();
                v.iter().sum::<u64>()
            }
        });
        let n = n_words as u64;
        assert_eq!(results[1], n * (n - 1) / 2);
    }

    #[test]
    fn large_messages_take_longer_than_small() {
        let time_for = |words: usize| {
            run_n(2, move |comm, ctx| {
                    if comm.rank() == 0 {
                        comm.send(ctx, 1, 1, Payload::U64(vec![0; words]));
                    } else {
                        let _ = comm.recv_from(ctx, 0, 1);
                    }
                })
                .0
        };
        assert!(time_for(1 << 16) > time_for(16));
    }

    #[test]
    fn wildcard_recv_matches_any_source() {
        let (_, results) = run_n(4, |comm, ctx| {
            if comm.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..3 {
                    let env = comm.recv(ctx, None, Some(5));
                    sum += env.payload.into_u64()[0];
                }
                sum
            } else {
                comm.send(ctx, 0, 5, Payload::U64(vec![comm.rank() as u64]));
                0
            }
        });
        assert_eq!(results[0], 1 + 2 + 3);
    }

    #[test]
    fn tag_matching_keeps_streams_separate() {
        let (_, results) = run_n(2, |comm, ctx| {
            if comm.rank() == 0 {
                comm.send(ctx, 1, 10, Payload::U64(vec![10]));
                comm.send(ctx, 1, 20, Payload::U64(vec![20]));
                0
            } else {
                // Receive in reverse tag order: matching must not care
                // about arrival order.
                let b = comm.recv_from(ctx, 0, 20).payload.into_u64()[0];
                let a = comm.recv_from(ctx, 0, 10).payload.into_u64()[0];
                a * 100 + b
            }
        });
        assert_eq!(results[1], 10 * 100 + 20);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let (_, results) = run_n(8, |comm, ctx| {
            // Stagger arrival times; everyone must leave after the latest.
            ctx.delay(us(comm.rank() as u64 * 10));
            comm.barrier(ctx);
            ctx.now()
        });
        let latest_arrival = us(7 * 10);
        for (r, &t) in results.iter().enumerate() {
            assert!(t >= latest_arrival, "rank {r} left the barrier at {t} before {latest_arrival}");
        }
    }

    #[test]
    fn bcast_reaches_every_rank_from_any_root() {
        for root in [0, 3, 6] {
            let (_, results) = run_n(7, move |comm, ctx| {
                let data = (comm.rank() == root).then(|| Payload::U64(vec![42, 43]));
                comm.bcast(ctx, root, data).into_u64()
            });
            for r in results {
                assert_eq!(r, vec![42, 43]);
            }
        }
    }

    #[test]
    fn reduce_and_allreduce_compute_real_sums() {
        let (_, results) = run_n(6, |comm, ctx| {
            let mine = Payload::F64(vec![comm.rank() as f64, 1.0]);
            let total = comm.allreduce(ctx, ReduceOp::Sum, mine);
            total.into_f64()
        });
        for r in results {
            assert_eq!(r, vec![15.0, 6.0]);
        }
    }

    #[test]
    fn reduce_xor_matches_serial() {
        let (_, results) = run_n(5, |comm, ctx| {
            let mine = Payload::U64(vec![0x1 << comm.rank()]);
            comm.reduce(ctx, 2, ReduceOp::Xor, mine).map(|p| p.into_u64()[0])
        });
        assert_eq!(results[2], Some(0b11111));
        assert_eq!(results[0], None);
    }

    #[test]
    fn allgather_assembles_rank_order() {
        let (_, results) = run_n(5, |comm, ctx| {
            let blocks = comm.allgather(ctx, Payload::U64(vec![comm.rank() as u64; 2]));
            blocks.into_iter().flat_map(|p| p.into_u64()).collect::<Vec<u64>>()
        });
        for r in results {
            assert_eq!(r, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
        }
    }

    #[test]
    fn alltoall_transposes_blocks() {
        let n = 6;
        let (_, results) = run_n(n, move |comm, ctx| {
            let me = comm.rank() as u64;
            // Block for dst d carries [me, d].
            let blocks: Vec<Payload> =
                (0..n as u64).map(|d| Payload::U64(vec![me, d])).collect();
            let got = comm.alltoall(ctx, blocks);
            got.into_iter().map(|p| p.into_u64()).collect::<Vec<_>>()
        });
        for (me, got) in results.into_iter().enumerate() {
            for (src, block) in got.into_iter().enumerate() {
                assert_eq!(block, vec![src as u64, me as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_with_ragged_sizes() {
        let n = 4;
        let (_, results) = run_n(n, move |comm, ctx| {
            let me = comm.rank();
            // Rank r sends r+d+1 words to rank d.
            let blocks: Vec<Payload> =
                (0..n).map(|d| Payload::U64(vec![me as u64; me + d + 1])).collect();
            let got = comm.alltoall(ctx, blocks);
            got.into_iter().map(|p| p.into_u64().len()).collect::<Vec<_>>()
        });
        for (me, lens) in results.into_iter().enumerate() {
            let expect: Vec<usize> = (0..n).map(|src| src + me + 1).collect();
            assert_eq!(lens, expect);
        }
    }

    #[test]
    fn gather_scatter_round_trip() {
        let n = 5;
        let (_, results) = run_n(n, move |comm, ctx| {
            let me = comm.rank();
            let gathered = comm.gather(ctx, 0, Payload::U64(vec![me as u64 * 7]));
            let redistributed = if me == 0 {
                // Root doubles every contribution and scatters back.
                let doubled: Vec<Payload> = gathered
                    .unwrap()
                    .into_iter()
                    .map(|p| Payload::U64(p.into_u64().iter().map(|x| x * 2).collect()))
                    .collect();
                comm.scatter(ctx, 0, Some(doubled))
            } else {
                comm.scatter(ctx, 0, None)
            };
            redistributed.into_u64()[0]
        });
        for (me, v) in results.into_iter().enumerate() {
            assert_eq!(v, me as u64 * 14);
        }
    }

    #[test]
    fn barrier_latency_grows_with_scale() {
        // The Figure 4 mechanism, unit-test sized.
        let barrier_time = |n: usize| {
            let (elapsed, _) = run_n(n, |comm, ctx| {
                for _ in 0..10 {
                    comm.barrier(ctx);
                }
            });
            elapsed as f64 / 10.0
        };
        let t4 = barrier_time(4);
        let t32 = barrier_time(32);
        assert!(t32 > t4 * 1.5, "t4 {t4} t32 {t32}");
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            run_n(8, |comm, ctx| {
                    let mine = Payload::U64(vec![comm.rank() as u64]);
                    let all = comm.allreduce(ctx, ReduceOp::Sum, mine);
                    comm.barrier(ctx);
                    (ctx.now(), all.into_u64()[0])
                })
                .1
        };
        assert_eq!(run(), run());
    }
}
