//! InfiniBand fat-tree cost model.
//!
//! Three resources shape a transfer from `src` to `dst`:
//!
//! * the sender NIC's transmit pipe (per-port peak, 6.8 GB/s for FDR ×4),
//! * the shared fabric core — aggregate capacity `nodes × link ×
//!   core_efficiency(nodes)`, the efficiency term modeling static-routing
//!   losses on fat trees under unstructured traffic (Hoefler et al.,
//!   cited by the paper as the reason "the reliance on fat-trees limits
//!   Infiniband effectiveness for unstructured traffic"),
//! * the receiver NIC's receive pipe.
//!
//! All three are FIFO bandwidth servers; a message reserves each in
//! sequence (cut-through: each stage starts when the head clears the
//! previous one) and lands after the one-way wire latency.

use dv_core::config::IbParams;
use dv_core::time::{self, Time};
use dv_sim::Pipe;

/// The modeled InfiniBand fabric for a cluster of `n` nodes.
pub struct IbFabric {
    params: IbParams,
    tx: Vec<Pipe>,
    rx: Vec<Pipe>,
    core: Pipe,
    nodes: usize,
}

impl IbFabric {
    /// Fabric for `nodes` nodes.
    pub fn new(nodes: usize, params: IbParams) -> Self {
        assert!(nodes >= 1);
        let core_gbps = params.link_gbps * nodes as f64 * params.core_efficiency(nodes);
        Self {
            tx: (0..nodes).map(|_| Pipe::new(params.link_gbps)).collect(),
            rx: (0..nodes).map(|_| Pipe::new(params.link_gbps)).collect(),
            core: Pipe::new(core_gbps),
            params,
            nodes,
        }
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Fabric parameters.
    pub fn params(&self) -> &IbParams {
        &self.params
    }

    /// Move `bytes` from `src` to `dst` starting no earlier than `now`,
    /// with `extra_wire_time` added to the serialization (protocol chunk
    /// overheads). Returns the arrival time of the last byte at `dst`.
    pub fn transfer(&self, now: Time, src: usize, dst: usize, bytes: u64, extra_wire_time: Time) -> Time {
        debug_assert!(src < self.nodes && dst < self.nodes);
        if src == dst {
            // Loopback: shared-memory copy, no fabric involvement.
            return now + time::transfer_time(bytes, self.params.link_gbps * 2.0);
        }
        let dur_link = time::transfer_time(bytes, self.params.link_gbps) + extra_wire_time;
        let (tx_start, tx_end) = self.tx[src].reserve_duration(now, dur_link);
        // Core occupancy: same byte count against the aggregate capacity;
        // cut-through (starts as the head clears the sender NIC).
        let (_, core_end) = self.core.reserve(tx_start, bytes);
        let rx_ready = tx_end.max(core_end);
        let (_, rx_end) = self.rx[dst].reserve_duration(rx_ready.saturating_sub(dur_link).max(tx_start), dur_link);
        rx_end.max(rx_ready) + self.params.wire_latency
    }

    /// Utilization counters: (tx busy, rx busy, core busy) in virtual time.
    pub fn busy(&self, node: usize) -> (Time, Time, Time) {
        (self.tx[node].busy_time(), self.rx[node].busy_time(), self.core.busy_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_core::time::{ns, rate_gbps};

    fn fabric(n: usize) -> IbFabric {
        IbFabric::new(n, IbParams::default())
    }

    #[test]
    fn single_transfer_is_latency_plus_serialization() {
        let f = fabric(2);
        let bytes = 1 << 20;
        let arrival = f.transfer(0, 0, 1, bytes, 0);
        let expected_min = time::transfer_time(bytes, f.params().link_gbps) + f.params().wire_latency;
        assert!(arrival >= expected_min);
        // Within 25% of the pure link bound for a 2-node cluster.
        assert!((arrival as f64) < expected_min as f64 * 1.25, "{arrival} vs {expected_min}");
    }

    #[test]
    fn small_message_latency_dominated_by_wire() {
        let f = fabric(2);
        let arrival = f.transfer(0, 0, 1, 8, 0);
        assert!(arrival >= f.params().wire_latency);
        assert!(arrival < f.params().wire_latency + ns(100));
    }

    #[test]
    fn sender_pipe_serializes_back_to_back_sends() {
        let f = fabric(4);
        let a = f.transfer(0, 0, 1, 1 << 20, 0);
        let b = f.transfer(0, 0, 2, 1 << 20, 0);
        // Second message leaves after the first clears the sender NIC.
        assert!(b > a, "{b} <= {a}");
    }

    #[test]
    fn receiver_hotspot_congests() {
        let f = fabric(8);
        let mut last = 0;
        for src in 1..8 {
            last = last.max(f.transfer(0, src, 0, 1 << 20, 0));
        }
        // 7 senders into one receiver: at least 7 serializations at the
        // receiver pipe.
        let one = time::transfer_time(1 << 20, f.params().link_gbps);
        assert!(last >= 7 * one, "{last} vs {}", 7 * one);
    }

    #[test]
    fn core_contention_grows_with_cluster_size() {
        // All-to-all style storm: every node sends to (i+1)%n at once.
        let storm = |n: usize| {
            let f = fabric(n);
            let mut worst = 0;
            for i in 0..n {
                for k in 0..4 {
                    worst = worst.max(f.transfer(0, i, (i + 1 + k) % n, 1 << 20, 0));
                }
            }
            worst
        };
        let t4 = storm(4);
        let t32 = storm(32);
        // Per-node load is identical; only core efficiency differs, so the
        // 32-node storm takes longer per node.
        assert!(t32 > t4, "t32 {t32} t4 {t4}");
    }

    #[test]
    fn loopback_is_cheap_and_off_fabric() {
        let f = fabric(2);
        let arrival = f.transfer(0, 1, 1, 1 << 20, 0);
        assert!(arrival < time::transfer_time(1 << 20, f.params().link_gbps));
        let (tx, rx, core) = f.busy(1);
        assert_eq!((tx, rx, core), (0, 0, 0));
    }

    #[test]
    fn achieved_bandwidth_is_close_to_link_rate_when_uncontended() {
        let f = fabric(2);
        let bytes = 64 << 20;
        let arrival = f.transfer(0, 0, 1, bytes, 0);
        let gbps = rate_gbps(bytes, arrival);
        assert!(gbps > 0.8 * f.params().link_gbps, "{gbps}");
    }
}
