//! Collective operations built from point-to-point algorithms.
//!
//! The algorithms match what openmpi-1.8-era `tuned` collectives use at
//! these message sizes: dissemination barrier, binomial-tree bcast and
//! reduce, reduce+bcast allreduce, ring allgather, and pairwise-exchange
//! alltoall(v). Their costs *emerge* from the point-to-point model — e.g.
//! the ⌈log₂ p⌉ rounds of the dissemination barrier are what makes the
//! MPI barrier in Figure 4 grow with node count.

use dv_core::time::Time;
use dv_core::trace::State;
use dv_sim::SimCtx;

use crate::comm::Comm;
use crate::payload::Payload;
use crate::{Tag, RESERVED_TAG_BASE};

const BARRIER_TAG: Tag = RESERVED_TAG_BASE;
const BCAST_TAG: Tag = RESERVED_TAG_BASE + 0x100;
const REDUCE_TAG: Tag = RESERVED_TAG_BASE + 0x200;
const GATHER_TAG: Tag = RESERVED_TAG_BASE + 0x300;
const ALLGATHER_TAG: Tag = RESERVED_TAG_BASE + 0x400;
const ALLTOALL_TAG: Tag = RESERVED_TAG_BASE + 0x500;
const SCATTER_TAG: Tag = RESERVED_TAG_BASE + 0x600;

/// Elementwise reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum (F64 or U64).
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise XOR (U64 only).
    Xor,
}

impl ReduceOp {
    /// Combine two payloads elementwise into the left one.
    pub fn combine(self, acc: &mut Payload, other: Payload) {
        match (acc, other) {
            (Payload::F64(a), Payload::F64(b)) => {
                assert_eq!(a.len(), b.len(), "reduce length mismatch");
                for (x, y) in a.iter_mut().zip(b) {
                    *x = match self {
                        ReduceOp::Sum => *x + y,
                        ReduceOp::Max => x.max(y),
                        ReduceOp::Min => x.min(y),
                        ReduceOp::Xor => panic!("XOR is not defined for F64"),
                    };
                }
            }
            (Payload::U64(a), Payload::U64(b)) => {
                assert_eq!(a.len(), b.len(), "reduce length mismatch");
                for (x, y) in a.iter_mut().zip(b) {
                    *x = match self {
                        ReduceOp::Sum => x.wrapping_add(y),
                        ReduceOp::Max => (*x).max(y),
                        ReduceOp::Min => (*x).min(y),
                        ReduceOp::Xor => *x ^ y,
                    };
                }
            }
            (a, b) => panic!("cannot reduce {a:?} with {b:?}"),
        }
    }
}

impl Comm {
    /// Record one finished collective: a `mpi.coll.calls{op}` count and the
    /// call's virtual duration into the `mpi.coll.time_ps{op}` histogram.
    fn record_coll(&self, ctx: &SimCtx, op: &'static str, t0: Time) {
        let m = self.metrics();
        let label = [("op", op.into())];
        m.incr_labeled("mpi.coll.calls", &label, 1);
        m.observe_labeled("mpi.coll.time_ps", &label, ctx.now() - t0);
    }

    /// Dissemination barrier: ⌈log₂ p⌉ rounds of pairwise token exchange.
    pub fn barrier(&self, ctx: &SimCtx) {
        let t0 = ctx.now();
        let n = self.size();
        let me = self.rank();
        let mut k = 1usize;
        let mut round = 0;
        while k < n {
            let to = (me + k) % n;
            let from = (me + n - k) % n;
            let tag = BARRIER_TAG + round;
            let req = self.isend(ctx, to, tag, Payload::Empty);
            let _ = self.recv_from(ctx, from, tag);
            self.wait(ctx, req);
            k <<= 1;
            round += 1;
        }
        self.tracer().span(me, State::Barrier, t0, ctx.now());
        self.record_coll(ctx, "barrier", t0);
    }

    /// Binomial-tree broadcast from `root`.
    pub fn bcast(&self, ctx: &SimCtx, root: usize, data: Option<Payload>) -> Payload {
        let t0 = ctx.now();
        let n = self.size();
        let me = self.rank();
        let vr = (me + n - root) % n;
        let mut payload = if me == root {
            data.expect("root must supply the broadcast payload")
        } else {
            let mut mask = 1usize;
            loop {
                assert!(mask < n, "non-root rank never received in bcast");
                if vr & mask != 0 {
                    let src = ((vr ^ mask) + root) % n;
                    break self.recv_from(ctx, src, BCAST_TAG).payload;
                }
                mask <<= 1;
            }
        };
        // Forward to children.
        let mut mask = {
            let mut m = 1usize;
            while m < n && vr & m == 0 {
                m <<= 1;
            }
            if vr == 0 {
                // Root: highest power of two below n*2 that we looped past.
                let mut m = 1;
                while m < n {
                    m <<= 1;
                }
                m
            } else {
                m
            }
        };
        mask >>= 1;
        let mut reqs = Vec::new();
        while mask > 0 {
            if vr + mask < n {
                let dst = ((vr + mask) + root) % n;
                reqs.push(self.isend(ctx, dst, BCAST_TAG, payload_clone(&mut payload)));
            }
            mask >>= 1;
        }
        self.wait_all(ctx, reqs);
        self.tracer().span(me, State::Collective, t0, ctx.now());
        self.record_coll(ctx, "bcast", t0);
        payload
    }

    /// Binomial-tree reduction to `root`; returns `Some(result)` on root.
    pub fn reduce(&self, ctx: &SimCtx, root: usize, op: ReduceOp, contribution: Payload) -> Option<Payload> {
        let t0 = ctx.now();
        let n = self.size();
        let me = self.rank();
        let vr = (me + n - root) % n;
        let mut acc = contribution;
        let mut mask = 1usize;
        let mut is_root_path = true;
        while mask < n {
            if vr & mask == 0 {
                let peer = vr | mask;
                if peer < n {
                    let env = self.recv_from(ctx, (peer + root) % n, REDUCE_TAG + mask as Tag);
                    op.combine(&mut acc, env.payload);
                }
            } else {
                let dst = ((vr ^ mask) + root) % n;
                self.send(ctx, dst, REDUCE_TAG + mask as Tag, acc);
                acc = Payload::Empty;
                is_root_path = false;
                break;
            }
            mask <<= 1;
        }
        self.tracer().span(me, State::Collective, t0, ctx.now());
        self.record_coll(ctx, "reduce", t0);
        if me == root {
            debug_assert!(is_root_path);
            Some(acc)
        } else {
            None
        }
    }

    /// Allreduce = reduce to 0 + broadcast (openmpi's default composition
    /// at these sizes).
    pub fn allreduce(&self, ctx: &SimCtx, op: ReduceOp, contribution: Payload) -> Payload {
        let reduced = self.reduce(ctx, 0, op, contribution);
        self.bcast(ctx, 0, reduced)
    }

    /// Gather all contributions at `root` (linear); `Some(vec)` on root,
    /// indexed by rank.
    pub fn gather(&self, ctx: &SimCtx, root: usize, contribution: Payload) -> Option<Vec<Payload>> {
        let t0 = ctx.now();
        let n = self.size();
        let me = self.rank();
        let out = if me == root {
            let mut out: Vec<Payload> = (0..n).map(|_| Payload::Empty).collect();
            out[me] = contribution;
            for _ in 0..n - 1 {
                let env = self.recv(ctx, None, Some(GATHER_TAG));
                out[env.src] = env.payload;
            }
            Some(out)
        } else {
            self.send(ctx, root, GATHER_TAG, contribution);
            None
        };
        self.record_coll(ctx, "gather", t0);
        out
    }

    /// Scatter per-rank payloads from `root` (linear).
    pub fn scatter(&self, ctx: &SimCtx, root: usize, data: Option<Vec<Payload>>) -> Payload {
        let t0 = ctx.now();
        let n = self.size();
        let me = self.rank();
        let mine = if me == root {
            let mut data = data.expect("root must supply scatter data");
            assert_eq!(data.len(), n);
            let mine = std::mem::replace(&mut data[me], Payload::Empty);
            let mut reqs = Vec::new();
            for (dst, p) in data.into_iter().enumerate() {
                if dst != me {
                    reqs.push(self.isend(ctx, dst, SCATTER_TAG, p));
                }
            }
            self.wait_all(ctx, reqs);
            mine
        } else {
            self.recv_from(ctx, root, SCATTER_TAG).payload
        };
        self.record_coll(ctx, "scatter", t0);
        mine
    }

    /// Ring allgather: p−1 steps, each forwarding one block.
    pub fn allgather(&self, ctx: &SimCtx, contribution: Payload) -> Vec<Payload> {
        let t0 = ctx.now();
        let n = self.size();
        let me = self.rank();
        let mut blocks: Vec<Payload> = (0..n).map(|_| Payload::Empty).collect();
        blocks[me] = contribution;
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        for step in 0..n.saturating_sub(1) {
            let send_idx = (me + n - step) % n;
            let recv_idx = (me + n - step - 1) % n;
            let out = payload_clone(&mut blocks[send_idx]);
            let env = self.sendrecv(
                ctx,
                right,
                ALLGATHER_TAG + step as Tag,
                out,
                left,
                ALLGATHER_TAG + step as Tag,
            );
            blocks[recv_idx] = env.payload;
        }
        self.tracer().span(me, State::Collective, t0, ctx.now());
        self.record_coll(ctx, "allgather", t0);
        blocks
    }

    /// Pairwise-exchange alltoall: `blocks[d]` goes to rank `d`; returns
    /// the blocks received, indexed by source. Handles unequal block sizes
    /// (alltoallv) for free.
    pub fn alltoall(&self, ctx: &SimCtx, mut blocks: Vec<Payload>) -> Vec<Payload> {
        let t0 = ctx.now();
        let n = self.size();
        let me = self.rank();
        assert_eq!(blocks.len(), n);
        let mut out: Vec<Payload> = (0..n).map(|_| Payload::Empty).collect();
        out[me] = std::mem::replace(&mut blocks[me], Payload::Empty);
        for step in 1..n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            let payload = std::mem::replace(&mut blocks[dst], Payload::Empty);
            let env = self.sendrecv(ctx, dst, ALLTOALL_TAG + step as Tag, payload, src, ALLTOALL_TAG + step as Tag);
            out[src] = env.payload;
        }
        self.tracer().span(me, State::Collective, t0, ctx.now());
        self.record_coll(ctx, "alltoall", t0);
        out
    }
}

/// Clone a payload out of a slot without leaving a type-confused hole.
fn payload_clone(p: &mut Payload) -> Payload {
    p.clone()
}
