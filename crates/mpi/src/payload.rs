//! Typed message payloads.
//!
//! Simulated messages carry *real data* — the kernels and applications on
//! top of this runtime compute real answers. A small closed set of typed
//! vectors avoids both serialization overhead and `Box<dyn Any>` downcast
//! churn in the hot path.

/// The data carried by one message.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// No data (control messages, barrier tokens).
    Empty,
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// 64-bit words (GUPS updates, graph vertex ids).
    U64(Vec<u64>),
    /// Doubles (stencil halos, reductions).
    F64(Vec<f64>),
    /// Interleaved complex numbers `[re0, im0, re1, im1, ...]` (FFT rows).
    C64(Vec<f64>),
}

impl Payload {
    /// Wire size in bytes.
    pub fn len_bytes(&self) -> u64 {
        match self {
            Payload::Empty => 0,
            Payload::Bytes(v) => v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::C64(v) => 8 * v.len() as u64,
        }
    }

    /// Number of elements of the carried type.
    pub fn len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::Bytes(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::F64(v) => v.len(),
            Payload::C64(v) => v.len() / 2,
        }
    }

    /// True when the payload carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len_bytes() == 0
    }

    /// Unwrap as u64 words.
    ///
    /// # Panics
    /// Panics when the payload has a different type — a protocol bug.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            Payload::Empty => Vec::new(),
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Unwrap as doubles.
    ///
    /// # Panics
    /// Panics on type mismatch.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            Payload::Empty => Vec::new(),
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwrap as interleaved complex values.
    ///
    /// # Panics
    /// Panics on type mismatch.
    pub fn into_c64(self) -> Vec<f64> {
        match self {
            Payload::C64(v) => v,
            Payload::Empty => Vec::new(),
            other => panic!("expected C64 payload, got {other:?}"),
        }
    }

    /// Unwrap as raw bytes.
    ///
    /// # Panics
    /// Panics on type mismatch.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            Payload::Empty => Vec::new(),
            other => panic!("expected Bytes payload, got {other:?}"),
        }
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }
}
impl From<Vec<f64>> for Payload {
    fn from(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }
}
impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_element_times_width() {
        assert_eq!(Payload::Empty.len_bytes(), 0);
        assert_eq!(Payload::Bytes(vec![0; 10]).len_bytes(), 10);
        assert_eq!(Payload::U64(vec![0; 10]).len_bytes(), 80);
        assert_eq!(Payload::F64(vec![0.0; 10]).len_bytes(), 80);
        assert_eq!(Payload::C64(vec![0.0; 10]).len(), 5);
    }

    #[test]
    fn unwrap_round_trips() {
        assert_eq!(Payload::from(vec![1u64, 2]).into_u64(), vec![1, 2]);
        assert_eq!(Payload::from(vec![1.5f64]).into_f64(), vec![1.5]);
        assert_eq!(Payload::from(vec![9u8]).into_bytes(), vec![9]);
        assert_eq!(Payload::Empty.into_u64(), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "expected U64")]
    fn type_confusion_panics() {
        let _ = Payload::F64(vec![1.0]).into_u64();
    }
}
