//! Runtime ordering auditor: a rolling hash of the event trace.
//!
//! The static pass (`dv-lint`) keeps order-dependent constructs out of the
//! code; this module is the *runtime* half of the determinism contract. The
//! kernel feeds every event it commits — `(virtual time, event kind,
//! process/sequence identity)` — through an FNV-1a hash. Two runs of the
//! same workload must produce the same [`OrderAudit::hash`] bit-for-bit:
//! any divergence means scheduling leaked host-side nondeterminism (hash
//! iteration order, thread timing, wall-clock) into the event stream.
//!
//! The hash is cheap (a handful of arithmetic ops per event), so it is
//! always on; [`Sim::run_hashed`](crate::Sim::run_hashed) exposes it and
//! the root `tests/determinism.rs` asserts equality across repeated runs
//! and across host thread counts.

use dv_core::time::Time;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Tag for a process-resume event record.
const TAG_RESUME: u64 = 1;
/// Tag for a kernel-closure (call) event record.
const TAG_CALL: u64 = 2;

/// Rolling FNV-1a hash over the committed event trace.
#[derive(Debug, Clone)]
pub struct OrderAudit {
    hash: u64,
    events: u64,
}

impl Default for OrderAudit {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderAudit {
    /// Fresh auditor (hash of the empty trace).
    pub fn new() -> Self {
        Self { hash: FNV_OFFSET, events: 0 }
    }

    #[inline]
    fn absorb_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.hash ^= byte as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a committed resume: the scheduler is about to run process
    /// `pid` at `time` (generation disambiguates re-parks at equal times).
    #[inline]
    pub fn record_resume(&mut self, time: Time, pid: usize, generation: u64) {
        self.absorb_u64(TAG_RESUME);
        self.absorb_u64(time);
        self.absorb_u64(pid as u64);
        self.absorb_u64(generation);
        self.events += 1;
    }

    /// Absorb a committed kernel closure: event `seq` fires at `time`.
    #[inline]
    pub fn record_call(&mut self, time: Time, seq: u64) {
        self.absorb_u64(TAG_CALL);
        self.absorb_u64(time);
        self.absorb_u64(seq);
        self.events += 1;
    }

    /// The trace hash so far.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of events absorbed so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_audits_agree() {
        assert_eq!(OrderAudit::new().hash(), OrderAudit::new().hash());
        assert_eq!(OrderAudit::new().events(), 0);
    }

    #[test]
    fn identical_traces_hash_identically() {
        let mut a = OrderAudit::new();
        let mut b = OrderAudit::new();
        for t in 0..100u64 {
            a.record_resume(t * 10, (t % 7) as usize, t);
            b.record_resume(t * 10, (t % 7) as usize, t);
            a.record_call(t * 10 + 5, t);
            b.record_call(t * 10 + 5, t);
        }
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.events(), 200);
    }

    #[test]
    fn any_field_change_changes_the_hash() {
        let base = {
            let mut h = OrderAudit::new();
            h.record_resume(10, 3, 7);
            h.hash()
        };
        for (t, p, g) in [(11, 3, 7), (10, 4, 7), (10, 3, 8)] {
            let mut h = OrderAudit::new();
            h.record_resume(t, p, g);
            assert_ne!(h.hash(), base, "({t},{p},{g}) must perturb the hash");
        }
        let mut call = OrderAudit::new();
        call.record_call(10, 3);
        assert_ne!(call.hash(), base, "kind tag must perturb the hash");
    }

    #[test]
    fn event_order_matters() {
        let mut ab = OrderAudit::new();
        ab.record_resume(10, 0, 0);
        ab.record_resume(10, 1, 0);
        let mut ba = OrderAudit::new();
        ba.record_resume(10, 1, 0);
        ba.record_resume(10, 0, 0);
        assert_ne!(ab.hash(), ba.hash());
    }
}
