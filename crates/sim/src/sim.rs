//! The simulator driver: process threads, the scheduler loop, `SimCtx`.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use std::sync::mpsc::{channel, Receiver, Sender};

use dv_core::metrics::MetricsRegistry;
use dv_core::sync::Mutex;

use dv_core::time::Time;

use crate::kernel::{EventKind, Kernel, Pid, Waker};

/// Sentinel panic payload used to unwind daemon processes at shutdown.
struct Shutdown;

enum Report {
    // The pid is implicit (the scheduler resumes one process at a time)
    // but kept for debuggability of scheduler traces.
    #[allow(dead_code)]
    Parked(Pid),
    Finished(Pid),
    Panicked(Pid, String),
}

struct ProcSlot {
    resume_tx: Sender<()>,
    handle: Option<JoinHandle<()>>,
    daemon: bool,
    finished: bool,
}

struct Registry {
    slots: Vec<ProcSlot>,
    live_foreground: usize,
}

struct Shared {
    kernel: Mutex<Kernel>,
    registry: Mutex<Registry>,
    report_tx: Sender<Report>,
}

/// A discrete-event simulation: spawn processes, then [`Sim::run`] to
/// completion.
///
/// ```
/// use dv_sim::{Sim, Port};
/// use dv_core::time::us;
///
/// let sim = Sim::new();
/// let port: Port<&str> = Port::new();
/// let rx = port.clone();
/// sim.spawn("consumer", move |ctx| {
///     let (arrived_at, msg) = rx.recv(ctx);
///     assert_eq!(msg, "hello");
///     assert_eq!(arrived_at, us(3));
/// });
/// sim.spawn("producer", move |ctx| {
///     ctx.delay(us(1));                 // compute for 1 µs of virtual time
///     port.send_delayed(ctx, us(2), "hello"); // 2 µs of link latency
/// });
/// let end = sim.run();
/// assert_eq!(end, us(3));
/// ```
pub struct Sim {
    shared: Arc<Shared>,
    report_rx: Receiver<Report>,
    metrics: Arc<MetricsRegistry>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Fresh simulation at virtual time zero.
    pub fn new() -> Self {
        let (report_tx, report_rx) = channel();
        let shared = Arc::new(Shared {
            kernel: Mutex::new_named("sim.kernel", Kernel::new()),
            registry: Mutex::new_named("sim.registry", Registry { slots: Vec::new(), live_foreground: 0 }),
            report_tx,
        });
        Self { shared, report_rx, metrics: MetricsRegistry::disabled_shared() }
    }

    /// Attach a metrics registry; at the end of [`Sim::run_hashed`] the
    /// kernel's scheduler counters are published into it as `sim.sched.*`.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = metrics;
    }

    /// Spawn a foreground process. The simulation runs until every
    /// foreground process has finished.
    pub fn spawn(&self, name: impl Into<String>, body: impl FnOnce(&SimCtx) + Send + 'static) -> Pid {
        spawn_inner(&self.shared, name.into(), false, body)
    }

    /// Spawn a daemon process: it may block forever (e.g. a NIC engine
    /// polling loop); the simulation ends without it and the process is
    /// unwound during shutdown.
    pub fn spawn_daemon(
        &self,
        name: impl Into<String>,
        body: impl FnOnce(&SimCtx) + Send + 'static,
    ) -> Pid {
        spawn_inner(&self.shared, name.into(), true, body)
    }

    /// Access the kernel before/after the run (e.g. to pre-schedule events).
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.shared.kernel.lock())
    }

    /// Run the simulation to completion and return the final virtual time.
    ///
    /// # Panics
    ///
    /// * If a simulated process panics (the panic message is propagated).
    /// * If all events drain while a foreground process is still parked —
    ///   a deadlock in the simulated program; the panic message names the
    ///   parked processes.
    pub fn run(self) -> Time {
        self.run_hashed().0
    }

    /// [`Sim::run`], additionally returning the [`OrderAudit`] trace hash
    /// (see [`crate::audit`]): identical workloads must return identical
    /// hashes, regardless of host scheduling or thread count.
    pub fn run_hashed(self) -> (Time, u64) {
        loop {
            let next = self.shared.kernel.lock().pop_valid();
            // Virtual-time telemetry sampling: advance the registry's
            // sampler to the event we are about to dispatch, so a sample
            // at boundary `b` captures exactly the events committed
            // before the first dispatch at or after `b`. Deterministic by
            // construction (keyed to the event sequence, never the host
            // clock); one relaxed atomic load when no series is attached.
            if let Some((t, _)) = &next {
                self.metrics.tick(*t);
            }
            match next {
                None => {
                    let live = self.shared.registry.lock().live_foreground;
                    if live > 0 {
                        let parked = self.parked_foreground_names();
                        self.shutdown();
                        panic!(
                            "simulation deadlock: no pending events but {live} foreground \
                             process(es) still parked: {parked:?}"
                        );
                    }
                    break;
                }
                Some((_t, EventKind::Call(f))) => {
                    f(&mut self.shared.kernel.lock());
                }
                Some((_t, EventKind::Resume(w))) => {
                    {
                        let reg = self.shared.registry.lock();
                        let slot = &reg.slots[w.pid()];
                        if slot.finished {
                            continue;
                        }
                        slot.resume_tx.send(()).expect("process thread vanished");
                    }
                    match self.report_rx.recv().expect("report channel closed") {
                        Report::Parked(_) => {}
                        Report::Finished(pid) => {
                            let live = {
                                let mut reg = self.shared.registry.lock();
                                let slot = &mut reg.slots[pid];
                                slot.finished = true;
                                if !slot.daemon {
                                    reg.live_foreground -= 1;
                                }
                                reg.live_foreground
                            };
                            if live == 0 {
                                // All foreground work done; any remaining
                                // events belong to daemons and are dropped.
                                break;
                            }
                        }
                        Report::Panicked(pid, msg) => {
                            let name =
                                self.shared.kernel.lock().proc_names[pid].clone();
                            self.shutdown();
                            panic!("simulated process '{name}' panicked: {msg}");
                        }
                    }
                }
            }
        }
        let (now, hash) = {
            let k = self.shared.kernel.lock();
            if self.metrics.is_enabled() {
                let s = k.sched_stats();
                self.metrics.incr("sim.sched.resumes", s.resumes);
                self.metrics.incr("sim.sched.calls", s.calls);
                self.metrics.incr("sim.sched.stale_wakeups", s.stale_wakeups);
                self.metrics.incr("sim.sched.processes", s.processes);
                self.metrics.incr("sim.sched.trace_events", k.trace_events());
                self.metrics.incr("sim.clock.end_ps", k.now());
            }
            (k.now(), k.trace_hash())
        };
        self.shutdown();
        (now, hash)
    }

    fn parked_foreground_names(&self) -> Vec<String> {
        // Take the pids under the registry lock alone, then resolve names
        // under the kernel lock alone — holding both invites lock-order
        // trouble (DV-W012) for no benefit on this cold error path.
        let pids: Vec<usize> = {
            let reg = self.shared.registry.lock();
            reg.slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.daemon && !s.finished)
                .map(|(pid, _)| pid)
                .collect()
        };
        let kernel = self.shared.kernel.lock();
        pids.into_iter().map(|pid| kernel.proc_names[pid].clone()).collect()
    }

    /// Unblock every parked thread (their `park()` unwinds with a private
    /// sentinel) and join them.
    fn shutdown(&self) {
        let mut handles = Vec::new();
        {
            let mut reg = self.shared.registry.lock();
            for slot in reg.slots.iter_mut() {
                // Dropping the sender makes the thread's recv() fail,
                // which park() turns into a Shutdown unwind.
                let (dead_tx, _) = channel();
                slot.resume_tx = dead_tx;
                if let Some(h) = slot.handle.take() {
                    handles.push(h);
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
        // Drain any reports raced in during shutdown.
        while self.report_rx.try_recv().is_ok() {}
    }
}

fn spawn_inner(
    shared: &Arc<Shared>,
    name: String,
    daemon: bool,
    body: impl FnOnce(&SimCtx) + Send + 'static,
) -> Pid {
    let (resume_tx, resume_rx) = channel::<()>();
    let pid = {
        let mut kernel = shared.kernel.lock();
        let pid = kernel.register_process(name.clone());
        // First resume: start the process at the current virtual time.
        let waker = kernel.waker_for(pid);
        kernel.wake(waker);
        pid
    };
    let ctx = SimCtx { pid, shared: Arc::clone(shared), resume_rx };
    let report_tx = shared.report_tx.clone();
    let handle = std::thread::Builder::new()
        .name(format!("sim-{name}"))
        .spawn(move || {
            // Wait for the initial resume before touching anything.
            if ctx.resume_rx.recv().is_err() {
                return; // simulation torn down before we started
            }
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
            match result {
                Ok(()) => {
                    let _ = report_tx.send(Report::Finished(ctx.pid));
                }
                Err(payload) => {
                    if payload.downcast_ref::<Shutdown>().is_some() {
                        // Normal teardown of a parked process.
                        return;
                    }
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".into());
                    let _ = report_tx.send(Report::Panicked(ctx.pid, msg));
                }
            }
        })
        .expect("failed to spawn simulation thread");

    let mut reg = shared.registry.lock();
    debug_assert_eq!(reg.slots.len(), pid);
    reg.slots.push(ProcSlot { resume_tx, handle: Some(handle), daemon, finished: false });
    if !daemon {
        reg.live_foreground += 1;
    }
    pid
}

/// Per-process capability: the handle a simulated process uses to read the
/// clock, advance time, park, and schedule events. One per process; not
/// shareable across processes.
pub struct SimCtx {
    pid: Pid,
    shared: Arc<Shared>,
    resume_rx: Receiver<()>,
}

impl SimCtx {
    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.shared.kernel.lock().now()
    }

    /// Run a closure with the kernel locked (schedule events, fire wakers).
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.shared.kernel.lock())
    }

    /// A waker for this process's *current* park generation. Hand it to a
    /// wait queue, then call [`SimCtx::park`].
    pub fn waker(&self) -> Waker {
        let k = self.shared.kernel.lock();
        k.waker_for(self.pid)
    }

    /// Park until any waker for the current generation fires. Spurious
    /// wakeups are possible when several wakers were registered; callers
    /// must re-check their condition in a loop.
    pub fn park(&self) {
        let _ = self.shared.report_tx.send(Report::Parked(self.pid));
        if self.resume_rx.recv().is_err() {
            // Simulation is shutting down: unwind this thread.
            panic::panic_any(Shutdown);
        }
    }

    /// Block until virtual time `t` (no-op if already past).
    pub fn wait_until(&self, t: Time) {
        loop {
            let waker = {
                let mut k = self.shared.kernel.lock();
                if k.now() >= t {
                    return;
                }
                let w = k.waker_for(self.pid);
                k.wake_at(t, w);
                w
            };
            debug_assert_eq!(waker.pid(), self.pid);
            self.park();
        }
    }

    /// Advance virtual time by `d` — the standard way to charge compute
    /// cost for work the process just (really) performed.
    pub fn delay(&self, d: Time) {
        if d == 0 {
            return;
        }
        let target = self.now() + d;
        self.wait_until(target);
    }

    /// Spawn a foreground process from inside the simulation.
    pub fn spawn(&self, name: impl Into<String>, body: impl FnOnce(&SimCtx) + Send + 'static) -> Pid {
        spawn_inner(&self.shared, name.into(), false, body)
    }

    /// Spawn a daemon process from inside the simulation.
    pub fn spawn_daemon(
        &self,
        name: impl Into<String>,
        body: impl FnOnce(&SimCtx) + Send + 'static,
    ) -> Pid {
        spawn_inner(&self.shared, name.into(), true, body)
    }
}
