//! The simulator driver: process threads, cooperative dispatch, `SimCtx`.
//!
//! ## The sharded cooperative engine
//!
//! The engine keeps the one-process-at-a-time execution model (that is what
//! makes the simulation deterministic) but eliminates the central scheduler
//! thread of the original design. There is a single *run token*; whoever
//! holds it is the **driver** and commits events from the sharded kernel
//! queues in global `(time, seq)` order:
//!
//! * When a process parks, *its own thread* becomes the driver: it commits
//!   `Call`/`Timer` events inline (zero context switches), and on a `Resume`
//!   either keeps running (the resume targets itself — zero switches) or
//!   grants the target's [`Parker`] and goes passive (one wake, versus the
//!   old engine's two context switches and two allocating channel sends
//!   per event).
//! * The driver also *pre-wakes* the process named by the next pending
//!   event, so that thread's wakeup overlaps the current process's
//!   execution; by the time its grant arrives it is spinning, and the
//!   handoff is a single atomic store. Hints never commit anything — a
//!   wrong hint costs a bounded spin, never determinism.
//! * The host thread drives until the first handoff, then sleeps until a
//!   driver reports the run's outcome (all foreground processes finished,
//!   deadlock, or a process panic).
//!
//! The frozen pre-sharding scheduler is kept verbatim behind
//! [`Engine::Reference`] (see [`crate::reference`]) as the determinism
//! oracle: both engines must produce bit-identical [`OrderAudit`] traces.
//!
//! [`OrderAudit`]: crate::audit::OrderAudit

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

use std::sync::mpsc::{channel, Receiver, Sender};

use dv_core::metrics::MetricsRegistry;
use dv_core::spec::Engine;
use dv_core::sync::Mutex;

use dv_core::time::Time;

use crate::kernel::{EventKind, Kernel, Pid, Waker};
use crate::parker::Parker;

/// Sentinel panic payload used to unwind parked processes at shutdown.
pub(crate) struct Shutdown;

pub(crate) enum Report {
    // The pid is implicit (the scheduler resumes one process at a time)
    // but kept for debuggability of scheduler traces.
    #[allow(dead_code)]
    Parked(Pid),
    Finished(Pid),
    Panicked(Pid, String),
}

/// How the engine hands a process the run token.
pub(crate) enum SlotWake {
    /// Sharded engine: direct grant on the process's parker.
    Parker(Arc<Parker>),
    /// Reference engine: the historical `Sender<()>` resume handshake.
    Channel(Sender<()>),
}

pub(crate) struct ProcSlot {
    pub(crate) wake: SlotWake,
    pub(crate) handle: Option<JoinHandle<()>>,
    pub(crate) daemon: bool,
    pub(crate) finished: bool,
}

pub(crate) struct Registry {
    pub(crate) slots: Vec<ProcSlot>,
    pub(crate) live_foreground: usize,
}

/// Terminal state of a sharded-engine run, reported by whichever thread
/// discovers it.
#[derive(Clone)]
enum Outcome {
    /// Every foreground process finished.
    Done,
    /// Deadlock or simulated-process panic; the message is pre-formatted
    /// and re-panicked on the host thread.
    Abort(String),
}

/// One-shot outcome cell the host sleeps on while processes drive.
struct OutcomeCell {
    state: StdMutex<Option<Outcome>>,
    cv: Condvar,
}

impl OutcomeCell {
    fn new() -> Self {
        Self { state: StdMutex::new(None), cv: Condvar::new() }
    }

    /// First writer wins; later reports of secondary failures are dropped.
    fn set(&self, outcome: Outcome) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if s.is_none() {
            *s = Some(outcome);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Outcome {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(o) = s.as_ref() {
                return o.clone();
            }
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }
}

pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) kernel: Mutex<Kernel>,
    pub(crate) registry: Mutex<Registry>,
    /// Swappable so `set_metrics` can arrive after construction; read once
    /// per dispatch stint.
    pub(crate) metrics: Mutex<Arc<MetricsRegistry>>,
    /// Reference engine only: park/finish/panic reports to the scheduler.
    pub(crate) report_tx: Sender<Report>,
    /// Sharded engine only: terminal state, host sleeps on it.
    outcome: OutcomeCell,
}

/// A discrete-event simulation: spawn processes, then [`Sim::run`] to
/// completion.
///
/// ```
/// use dv_sim::{Sim, Port};
/// use dv_core::time::us;
///
/// let sim = Sim::new();
/// let port: Port<&str> = Port::new();
/// let rx = port.clone();
/// sim.spawn("consumer", move |ctx| {
///     let (arrived_at, msg) = rx.recv(ctx);
///     assert_eq!(msg, "hello");
///     assert_eq!(arrived_at, us(3));
/// });
/// sim.spawn("producer", move |ctx| {
///     ctx.delay(us(1));                 // compute for 1 µs of virtual time
///     port.send_delayed(ctx, us(2), "hello"); // 2 µs of link latency
/// });
/// let end = sim.run();
/// assert_eq!(end, us(3));
/// ```
pub struct Sim {
    pub(crate) shared: Arc<Shared>,
    pub(crate) report_rx: Receiver<Report>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

/// Default shard count: one event queue per available core, capped — the
/// merge scans every shard head, so very wide shard arrays stop paying off.
fn auto_shards() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 16)
}

impl Sim {
    /// Fresh simulation at virtual time zero on the sharded engine with an
    /// automatic shard count.
    pub fn new() -> Self {
        Self::with_engine(Engine::Sharded, 0)
    }

    /// Fresh simulation on a specific engine; `shards` of `0` means auto.
    /// Shard count and engine choice never change results — only the trace
    /// hash proves it, and `tests/shard_invariance.rs` holds that proof.
    pub fn with_engine(engine: Engine, shards: usize) -> Self {
        let shards = match engine {
            Engine::Reference => 1,
            Engine::Sharded => {
                if shards == 0 {
                    auto_shards()
                } else {
                    shards
                }
            }
        };
        let (report_tx, report_rx) = channel();
        let shared = Arc::new(Shared {
            engine,
            kernel: Mutex::new_named("sim.kernel", Kernel::new(shards)),
            registry: Mutex::new_named(
                "sim.registry",
                Registry { slots: Vec::new(), live_foreground: 0 },
            ),
            metrics: Mutex::new(MetricsRegistry::disabled_shared()),
            report_tx,
            outcome: OutcomeCell::new(),
        });
        Self { shared, report_rx }
    }

    /// Which engine this simulation runs on.
    pub fn engine(&self) -> Engine {
        self.shared.engine
    }

    /// Attach a metrics registry; at the end of [`Sim::run_hashed`] the
    /// kernel's scheduler counters are published into it as `sim.sched.*`.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        *self.shared.metrics.lock() = metrics;
    }

    /// Spawn a foreground process. The simulation runs until every
    /// foreground process has finished.
    pub fn spawn(&self, name: impl Into<String>, body: impl FnOnce(&SimCtx) + Send + 'static) -> Pid {
        spawn_inner(&self.shared, name.into(), false, body)
    }

    /// Spawn a daemon process: it may block forever (e.g. a NIC engine
    /// polling loop); the simulation ends without it and the process is
    /// unwound during shutdown.
    pub fn spawn_daemon(
        &self,
        name: impl Into<String>,
        body: impl FnOnce(&SimCtx) + Send + 'static,
    ) -> Pid {
        spawn_inner(&self.shared, name.into(), true, body)
    }

    /// Access the kernel before/after the run (e.g. to pre-schedule events).
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.shared.kernel.lock())
    }

    /// Run the simulation to completion and return the final virtual time.
    ///
    /// # Panics
    ///
    /// * If a simulated process panics (the panic message is propagated).
    /// * If all events drain while a foreground process is still parked —
    ///   a deadlock in the simulated program; the panic message names the
    ///   parked processes.
    pub fn run(self) -> Time {
        self.run_hashed().0
    }

    /// [`Sim::run`], additionally returning the [`OrderAudit`] trace hash
    /// (see [`crate::audit`]): identical workloads must return identical
    /// hashes, regardless of host scheduling, thread count, shard count,
    /// or engine choice.
    ///
    /// [`OrderAudit`]: crate::audit::OrderAudit
    pub fn run_hashed(self) -> (Time, u64) {
        if matches!(self.shared.engine, Engine::Reference) {
            return self.run_reference();
        }
        // Drive until the first handoff (or straight to the end for runs
        // with no resumable process), then sleep until a driver reports.
        let _ = drive(&self.shared, None);
        let outcome = self.shared.outcome.wait();
        match outcome {
            Outcome::Done => {
                let (now, hash) = publish_and_hash(&self.shared);
                self.shutdown();
                (now, hash)
            }
            Outcome::Abort(msg) => {
                self.shutdown();
                panic!("{msg}");
            }
        }
    }

    /// Unblock every parked thread (their `park()` unwinds with a private
    /// sentinel) and join them. Idempotent.
    pub(crate) fn shutdown(&self) {
        let mut handles = Vec::new();
        {
            let mut reg = self.shared.registry.lock();
            for slot in reg.slots.iter_mut() {
                match &mut slot.wake {
                    SlotWake::Parker(p) => p.shutdown(),
                    SlotWake::Channel(tx) => {
                        // Dropping the sender makes the thread's recv()
                        // fail, which park() turns into a Shutdown unwind.
                        let (dead_tx, _) = channel();
                        *tx = dead_tx;
                    }
                }
                if let Some(h) = slot.handle.take() {
                    handles.push(h);
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
        // Drain any reports raced in during shutdown.
        while self.report_rx.try_recv().is_ok() {}
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // A Sim dropped without running (or mid-panic) must still release
        // its process threads; shutdown is idempotent, so the normal path
        // pays only a second walk over empty slots.
        self.shutdown();
    }
}

/// End-of-run metrics publication + final clock/hash read (both engines).
pub(crate) fn publish_and_hash(shared: &Shared) -> (Time, u64) {
    let metrics = shared.metrics.lock().clone();
    let k = shared.kernel.lock();
    if metrics.is_enabled() {
        let s = k.sched_stats();
        metrics.incr("sim.sched.resumes", s.resumes);
        metrics.incr("sim.sched.calls", s.calls);
        metrics.incr("sim.sched.stale_wakeups", s.stale_wakeups);
        metrics.incr("sim.sched.processes", s.processes);
        metrics.incr("sim.sched.trace_events", k.trace_events());
        metrics.incr("sim.clock.end_ps", k.now());
    }
    (k.now(), k.trace_hash())
}

/// Names of foreground processes that have not finished (deadlock report).
/// Takes the pids under the registry lock alone, then resolves names under
/// the kernel lock alone — holding both invites lock-order trouble
/// (DV-W012) for no benefit on this cold error path.
fn parked_foreground_names(shared: &Shared) -> Vec<String> {
    let pids: Vec<usize> = {
        let reg = shared.registry.lock();
        reg.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.daemon && !s.finished)
            .map(|(pid, _)| pid)
            .collect()
    };
    let kernel = shared.kernel.lock();
    pids.into_iter().map(|pid| kernel.proc_names[pid].clone()).collect()
}

/// What the dispatch stint told the calling thread to do next.
enum Driven {
    /// The next event resumes the caller itself: keep running.
    RunSelf,
    /// The run token was granted to another process; go passive.
    HandedOff,
    /// The run reached a terminal state (drained queue); the outcome cell
    /// is set and the caller must not dispatch again.
    Ended,
}

/// Whether pre-wake spinning can possibly help: it burns one core to save
/// a futex wake, so on a single-core host it only steals the CPU from the
/// process that actually holds the run token.
fn prewake_pays() -> bool {
    static MULTICORE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MULTICORE.get_or_init(|| {
        std::thread::available_parallelism().map(|n| n.get() > 1).unwrap_or(false)
    })
}

/// One dispatch stint: commit events in global `(time, seq)` order until a
/// resume hands the token to a process (or the queue drains). Exactly one
/// thread runs this at a time — the token holder — which is what keeps the
/// commit order, and therefore the audit hash, deterministic.
fn drive(shared: &Shared, self_pid: Option<Pid>) -> Driven {
    let metrics = shared.metrics.lock().clone();
    loop {
        // Pop the next committed event and, for resumes, peek the one
        // after it as a pre-wake hint — one kernel lock for both.
        let (next, hint) = {
            let mut k = shared.kernel.lock();
            let next = k.pop_valid();
            let hint = match &next {
                Some((_, EventKind::Resume(_))) => k.peek_next_resume(),
                _ => None,
            };
            (next, hint)
        };
        // Virtual-time telemetry sampling: advance the registry's sampler
        // to the event we are about to dispatch, so a sample at boundary
        // `b` captures exactly the events committed before the first
        // dispatch at or after `b`. Deterministic by construction (keyed
        // to the event sequence, never the host clock); one relaxed
        // atomic load when no series is attached.
        if let Some((t, _)) = &next {
            metrics.tick(*t);
        }
        match next {
            None => {
                let live = shared.registry.lock().live_foreground;
                if live > 0 {
                    let parked = parked_foreground_names(shared);
                    shared.outcome.set(Outcome::Abort(format!(
                        "simulation deadlock: no pending events but {live} foreground \
                         process(es) still parked: {parked:?}"
                    )));
                } else {
                    shared.outcome.set(Outcome::Done);
                }
                return Driven::Ended;
            }
            Some((_t, EventKind::Call(f))) => {
                f(&mut shared.kernel.lock());
            }
            Some((_t, EventKind::Timer(id))) => {
                let mut k = shared.kernel.lock();
                if let Some(mut hook) = k.take_timer_hook(id) {
                    hook(&mut k);
                    k.put_timer_hook(id, hook);
                }
            }
            Some((_t, EventKind::Resume(w))) => {
                let reg = shared.registry.lock();
                let slot = &reg.slots[w.pid()];
                if slot.finished {
                    // The resume was committed (audit + stats) exactly as
                    // the reference engine commits it, then skipped.
                    continue;
                }
                if self_pid == Some(w.pid()) {
                    return Driven::RunSelf;
                }
                if let Some(h) = hint {
                    // Overlap the *next* process's wakeup with the granted
                    // process's execution.
                    if h != w.pid() && self_pid != Some(h) && prewake_pays() {
                        if let Some(hs) = reg.slots.get(h) {
                            if !hs.finished {
                                if let SlotWake::Parker(p) = &hs.wake {
                                    p.prewake();
                                }
                            }
                        }
                    }
                }
                match &slot.wake {
                    SlotWake::Parker(p) => p.grant(),
                    SlotWake::Channel(_) => {
                        unreachable!("reference slots cannot appear in the sharded dispatcher")
                    }
                }
                return Driven::HandedOff;
            }
        }
    }
}

fn spawn_inner(
    shared: &Arc<Shared>,
    name: String,
    daemon: bool,
    body: impl FnOnce(&SimCtx) + Send + 'static,
) -> Pid {
    let pid = {
        let mut kernel = shared.kernel.lock();
        let pid = kernel.register_process(name.clone());
        // First resume: start the process at the current virtual time.
        let waker = kernel.waker_for(pid);
        kernel.wake(waker);
        pid
    };
    let (wake, wait) = match shared.engine {
        Engine::Sharded => {
            let parker = Arc::new(Parker::new());
            (SlotWake::Parker(Arc::clone(&parker)), CtxWait::Parker(parker))
        }
        Engine::Reference => {
            let (resume_tx, resume_rx) = channel::<()>();
            (SlotWake::Channel(resume_tx), CtxWait::Channel(resume_rx))
        }
    };
    let ctx = SimCtx { pid, shared: Arc::clone(shared), wait };
    let handle = std::thread::Builder::new()
        .name(format!("sim-{name}"))
        .spawn(move || {
            // Wait for the initial resume before touching anything.
            let started = match &ctx.wait {
                CtxWait::Parker(p) => p.wait().is_ok(),
                CtxWait::Channel(rx) => rx.recv().is_ok(),
            };
            if !started {
                return; // simulation torn down before we started
            }
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
            match result {
                Ok(()) => on_finished(&ctx),
                Err(payload) => {
                    if payload.downcast_ref::<Shutdown>().is_some() {
                        // Normal teardown of a parked process.
                        return;
                    }
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".into());
                    on_panicked(&ctx, msg);
                }
            }
        })
        .expect("failed to spawn simulation thread");

    let mut reg = shared.registry.lock();
    debug_assert_eq!(reg.slots.len(), pid);
    reg.slots.push(ProcSlot { wake, handle: Some(handle), daemon, finished: false });
    if !daemon {
        reg.live_foreground += 1;
    }
    pid
}

/// A process body returned normally.
fn on_finished(ctx: &SimCtx) {
    match ctx.wait {
        CtxWait::Channel(_) => {
            let _ = ctx.shared.report_tx.send(Report::Finished(ctx.pid));
        }
        CtxWait::Parker(_) => {
            let live = {
                let mut reg = ctx.shared.registry.lock();
                let slot = &mut reg.slots[ctx.pid];
                slot.finished = true;
                if !slot.daemon {
                    reg.live_foreground -= 1;
                }
                reg.live_foreground
            };
            if live == 0 {
                // All foreground work done; any remaining events belong to
                // daemons and are dropped (same cut as the reference
                // engine's scheduler loop).
                ctx.shared.outcome.set(Outcome::Done);
            } else {
                // This thread holds the run token: keep driving until the
                // token moves on, then let the thread exit.
                let _ = drive(&ctx.shared, None);
            }
        }
    }
}

/// A process body panicked (with a non-shutdown payload).
fn on_panicked(ctx: &SimCtx, msg: String) {
    match ctx.wait {
        CtxWait::Channel(_) => {
            let _ = ctx.shared.report_tx.send(Report::Panicked(ctx.pid, msg));
        }
        CtxWait::Parker(_) => {
            let name = ctx.shared.kernel.lock().proc_names[ctx.pid].clone();
            ctx.shared
                .outcome
                .set(Outcome::Abort(format!("simulated process '{name}' panicked: {msg}")));
        }
    }
}

/// How a process waits for its resume — the per-engine half of
/// [`SlotWake`].
enum CtxWait {
    Parker(Arc<Parker>),
    Channel(Receiver<()>),
}

/// Per-process capability: the handle a simulated process uses to read the
/// clock, advance time, park, and schedule events. One per process; not
/// shareable across processes.
pub struct SimCtx {
    pid: Pid,
    shared: Arc<Shared>,
    wait: CtxWait,
}

impl SimCtx {
    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.shared.kernel.lock().now()
    }

    /// Run a closure with the kernel locked (schedule events, fire wakers).
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.shared.kernel.lock())
    }

    /// A waker for this process's *current* park generation. Hand it to a
    /// wait queue, then call [`SimCtx::park`].
    pub fn waker(&self) -> Waker {
        let k = self.shared.kernel.lock();
        k.waker_for(self.pid)
    }

    /// Park until any waker for the current generation fires. Spurious
    /// wakeups are possible when several wakers were registered; callers
    /// must re-check their condition in a loop.
    ///
    /// On the sharded engine, parking *is* dispatching: the calling thread
    /// drives the kernel until the run token moves to another process (or
    /// comes straight back — the self-resume fast path, zero context
    /// switches).
    pub fn park(&self) {
        match &self.wait {
            CtxWait::Parker(p) => match drive(&self.shared, Some(self.pid)) {
                Driven::RunSelf => {}
                Driven::HandedOff | Driven::Ended => {
                    if p.wait().is_err() {
                        // Simulation is shutting down: unwind this thread.
                        panic::panic_any(Shutdown);
                    }
                }
            },
            CtxWait::Channel(rx) => {
                let _ = self.shared.report_tx.send(Report::Parked(self.pid));
                if rx.recv().is_err() {
                    // Simulation is shutting down: unwind this thread.
                    panic::panic_any(Shutdown);
                }
            }
        }
    }

    /// Block until virtual time `t` (no-op if already past).
    pub fn wait_until(&self, t: Time) {
        loop {
            let waker = {
                let mut k = self.shared.kernel.lock();
                if k.now() >= t {
                    return;
                }
                let w = k.waker_for(self.pid);
                k.wake_at(t, w);
                w
            };
            debug_assert_eq!(waker.pid(), self.pid);
            self.park();
        }
    }

    /// Advance virtual time by `d` — the standard way to charge compute
    /// cost for work the process just (really) performed.
    pub fn delay(&self, d: Time) {
        if d == 0 {
            return;
        }
        let target = self.now() + d;
        self.wait_until(target);
    }

    /// Spawn a foreground process from inside the simulation.
    pub fn spawn(&self, name: impl Into<String>, body: impl FnOnce(&SimCtx) + Send + 'static) -> Pid {
        spawn_inner(&self.shared, name.into(), false, body)
    }

    /// Spawn a daemon process from inside the simulation.
    pub fn spawn_daemon(
        &self,
        name: impl Into<String>,
        body: impl FnOnce(&SimCtx) + Send + 'static,
    ) -> Pid {
        spawn_inner(&self.shared, name.into(), true, body)
    }
}
