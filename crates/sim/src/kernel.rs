//! The event kernel: virtual clock, sharded event queues, wakers, timers.
//!
//! Events live in *shards* — independent binary heaps, one per shard-worker
//! of the engine. Resume events are routed to the shard that owns their
//! target process (`pid % shards`); kernel calls and timers are spread by
//! sequence number. The dispatcher commits events through a conservative
//! merge: the globally earliest `(time, seq)` event across all shard heads
//! commits next, so the committed order — and therefore the
//! [`OrderAudit`] trace hash — is identical for any shard count, including
//! the pre-sharding single-queue engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dv_core::time::Time;

use crate::audit::OrderAudit;

/// Identifier of a simulated process.
pub type Pid = usize;

/// A one-shot handle to wake a parked process.
///
/// A waker is stamped with the *park generation* of the process at the time
/// it was created; if the process has been woken since (its generation
/// advanced), firing the waker is a silent no-op. This makes it safe to
/// leave stale wakers behind in wait queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waker {
    pub(crate) pid: Pid,
    pub(crate) generation: u64,
}

impl Waker {
    /// The process this waker targets.
    pub fn pid(&self) -> Pid {
        self.pid
    }
}

/// Handle to a pooled timer hook (see [`Kernel::register_timer`]).
///
/// A timer is the allocation-free sibling of [`Kernel::call_at`]: the hook
/// closure is boxed **once** at registration, and each [`Kernel::timer_at`]
/// schedules a plain copyable event that re-runs it. Components with a
/// steady stream of deliveries (ports, NIC engines) register one hook and
/// stage their payloads in their own pooled buffers, so the per-message
/// steady state allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(u32);

type TimerHook = Box<dyn FnMut(&mut Kernel) + Send>;

pub(crate) enum EventKind {
    Resume(Waker),
    Call(Box<dyn FnOnce(&mut Kernel) + Send>),
    Timer(TimerId),
}

struct Event {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Sequence numbers break ties deterministically (FIFO).
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Scheduler activity counters, kept as plain integers so the hot
/// `pop_valid` loop pays no metrics overhead; `dv-sim` publishes them
/// into a `MetricsRegistry` once at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Committed `Resume` events (process wakeups that actually ran).
    pub resumes: u64,
    /// Committed `Call` and `Timer` events (kernel closures).
    pub calls: u64,
    /// Resume events discarded because their waker generation was stale.
    pub stale_wakeups: u64,
    /// Processes registered with the kernel.
    pub processes: u64,
}

/// The discrete-event kernel: the virtual clock plus the sharded
/// pending-event queues. Shared behind a mutex; only one simulated process
/// commits events at a time, so the lock is uncontended in steady state.
pub struct Kernel {
    now: Time,
    seq: u64,
    shards: Vec<BinaryHeap<Event>>,
    pending: usize,
    /// Park generation per process; a `Resume` event only fires if its
    /// waker's generation matches.
    pub(crate) park_generation: Vec<u64>,
    pub(crate) proc_names: Vec<String>,
    timer_hooks: Vec<Option<TimerHook>>,
    /// Rolling hash of every committed event (see [`OrderAudit`]).
    audit: OrderAudit,
    stats: SchedStats,
}

impl Kernel {
    pub(crate) fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            now: 0,
            seq: 0,
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
            pending: 0,
            park_generation: Vec::new(),
            proc_names: Vec::new(),
            timer_hooks: Vec::new(),
            audit: OrderAudit::new(),
            stats: SchedStats::default(),
        }
    }

    /// Number of event shards this kernel was built with.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Scheduler activity counters accumulated so far.
    pub fn sched_stats(&self) -> SchedStats {
        self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// FNV hash of the event trace committed so far. Identical workloads
    /// must yield identical hashes — the runtime determinism check.
    pub fn trace_hash(&self) -> u64 {
        self.audit.hash()
    }

    /// Number of events committed to the trace so far.
    pub fn trace_events(&self) -> u64 {
        self.audit.events()
    }

    /// Number of events still pending across all shards.
    pub fn pending_events(&self) -> usize {
        self.pending
    }

    fn push(&mut self, time: Time, kind: EventKind) {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        // Shared-nothing routing: a resume belongs to its target process's
        // shard; calls and timers are spread round-robin by sequence. The
        // commit order is a total-order merge over shard heads, so routing
        // affects locality only, never the committed order.
        let shard = match &kind {
            EventKind::Resume(w) => w.pid % self.shards.len(),
            _ => (seq as usize) % self.shards.len(),
        };
        self.shards[shard].push(Event { time, seq, kind });
        self.pending += 1;
    }

    /// Index of the shard holding the globally earliest pending event.
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(Time, u64, usize)> = None;
        for (i, heap) in self.shards.iter().enumerate() {
            if let Some(e) = heap.peek() {
                let key = (e.time, e.seq, i);
                if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Schedule a closure to run inside the kernel at virtual time `at`
    /// (clamped to `now`). Closures run with the kernel locked: they may
    /// mutate shared state and fire wakers but must not block.
    pub fn call_at(&mut self, at: Time, f: impl FnOnce(&mut Kernel) + Send + 'static) {
        self.push(at, EventKind::Call(Box::new(f)));
    }

    /// Register a pooled timer hook; returns its [`TimerId`]. The hook is
    /// re-run (with the kernel locked) each time a [`Kernel::timer_at`]
    /// event for this id commits. It must not block, and it observes the
    /// same ordering guarantees as [`Kernel::call_at`] closures.
    pub fn register_timer(&mut self, hook: Box<dyn FnMut(&mut Kernel) + Send>) -> TimerId {
        let id = TimerId(self.timer_hooks.len() as u32);
        self.timer_hooks.push(Some(hook));
        id
    }

    /// Schedule a firing of a registered timer at virtual time `at`
    /// (clamped to `now`). Commits exactly like a [`Kernel::call_at`]
    /// closure — same audit record, same `calls` counter — but allocates
    /// nothing.
    pub fn timer_at(&mut self, at: Time, id: TimerId) {
        self.push(at, EventKind::Timer(id));
    }

    pub(crate) fn take_timer_hook(&mut self, id: TimerId) -> Option<TimerHook> {
        self.timer_hooks[id.0 as usize].take()
    }

    pub(crate) fn put_timer_hook(&mut self, id: TimerId, hook: TimerHook) {
        self.timer_hooks[id.0 as usize] = Some(hook);
    }

    /// Fire a waker at virtual time `at` (clamped to `now`).
    pub fn wake_at(&mut self, at: Time, waker: Waker) {
        self.push(at, EventKind::Resume(waker));
    }

    /// Fire a waker at the current virtual time.
    pub fn wake(&mut self, waker: Waker) {
        self.wake_at(self.now, waker);
    }

    /// Current waker for a process (see [`Waker`] for staleness rules).
    pub fn waker_for(&self, pid: Pid) -> Waker {
        Waker { pid, generation: self.park_generation[pid] }
    }

    pub(crate) fn register_process(&mut self, name: String) -> Pid {
        let pid = self.park_generation.len();
        self.park_generation.push(0);
        self.proc_names.push(name);
        self.stats.processes += 1;
        pid
    }

    /// Pop the next *valid* event, advancing the clock. Stale resumes are
    /// discarded. For a valid resume, the target's park generation is
    /// advanced so any duplicate wakeups for the same park become stale.
    pub(crate) fn pop_valid(&mut self) -> Option<(Time, EventKind)> {
        while let Some(shard) = self.min_shard() {
            let ev = match self.shards[shard].pop() {
                Some(ev) => ev,
                None => break,
            };
            self.pending -= 1;
            debug_assert!(ev.time >= self.now, "time went backwards");
            match ev.kind {
                EventKind::Resume(w) => {
                    if self.park_generation[w.pid] == w.generation {
                        self.park_generation[w.pid] = w.generation.wrapping_add(1);
                        self.now = ev.time;
                        self.audit.record_resume(ev.time, w.pid, w.generation);
                        self.stats.resumes += 1;
                        return Some((ev.time, EventKind::Resume(w)));
                    }
                    // Stale wakeup: drop silently (but count it).
                    self.stats.stale_wakeups += 1;
                }
                kind @ (EventKind::Call(_) | EventKind::Timer(_)) => {
                    self.now = ev.time;
                    self.audit.record_call(ev.time, ev.seq);
                    self.stats.calls += 1;
                    return Some((ev.time, kind));
                }
            }
        }
        None
    }

    /// Peek the pid of the next event *if* it is a currently-valid resume
    /// for a process. Pure read — commits nothing, advances nothing — used
    /// by the dispatcher as a pre-wake hint so the next-to-run process can
    /// start waking while the current one executes. A wrong hint costs a
    /// wasted wakeup, never correctness.
    pub(crate) fn peek_next_resume(&self) -> Option<Pid> {
        let shard = self.min_shard()?;
        match self.shards[shard].peek() {
            Some(Event { kind: EventKind::Resume(w), .. })
                if self.park_generation[w.pid] == w.generation =>
            {
                Some(w.pid)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_fifo_order() {
        for shards in [1, 2, 4] {
            let mut k = Kernel::new(shards);
            let order = std::sync::Arc::new(dv_core::sync::Mutex::new(Vec::new()));
            for (tag, t) in [(0u32, 50u64), (1, 10), (2, 10), (3, 30)] {
                let order = order.clone();
                k.call_at(t, move |_| order.lock().push(tag));
            }
            while let Some((_, EventKind::Call(f))) = k.pop_valid() {
                f(&mut k);
            }
            // t=10 events in insertion order (1 before 2), then 30, then 50.
            assert_eq!(*order.lock(), vec![1, 2, 3, 0], "shards={shards}");
            assert_eq!(k.now(), 50);
        }
    }

    #[test]
    fn clock_clamps_past_times_to_now() {
        let mut k = Kernel::new(1);
        k.call_at(100, |_| {});
        let _ = k.pop_valid();
        assert_eq!(k.now(), 100);
        // Scheduling "in the past" lands at now.
        k.call_at(5, |_| {});
        let (t, _) = k.pop_valid().unwrap();
        assert_eq!(t, 100);
    }

    #[test]
    fn stale_wakers_are_dropped() {
        let mut k = Kernel::new(4);
        let pid = k.register_process("p".into());
        let w = k.waker_for(pid);
        k.wake_at(10, w);
        k.wake_at(20, w); // duplicate for the same park
        let (t, kind) = k.pop_valid().unwrap();
        assert_eq!(t, 10);
        assert!(matches!(kind, EventKind::Resume(_)));
        // The duplicate is now stale.
        assert!(k.pop_valid().is_none());
        assert_eq!(k.now(), 10, "stale events should not advance the clock past valid ones");
    }

    #[test]
    fn wakers_for_new_generation_fire() {
        let mut k = Kernel::new(1);
        let pid = k.register_process("p".into());
        let w0 = k.waker_for(pid);
        k.wake_at(10, w0);
        let _ = k.pop_valid().unwrap(); // generation now 1
        let w1 = k.waker_for(pid);
        assert_ne!(w0, w1);
        k.wake_at(30, w1);
        assert!(matches!(k.pop_valid(), Some((30, EventKind::Resume(_)))));
    }

    #[test]
    fn timers_commit_like_calls() {
        let mut k = Kernel::new(2);
        let fired = std::sync::Arc::new(dv_core::sync::Mutex::new(0u32));
        let f2 = fired.clone();
        let id = k.register_timer(Box::new(move |_| *f2.lock() += 1));
        k.timer_at(10, id);
        k.timer_at(30, id);
        for _ in 0..2 {
            match k.pop_valid() {
                Some((_, EventKind::Timer(t))) => {
                    let mut hook = k.take_timer_hook(t).expect("hook registered");
                    hook(&mut k);
                    k.put_timer_hook(t, hook);
                }
                other => panic!("expected timer, got {:?}", other.map(|(t, _)| t)),
            }
        }
        assert_eq!(*fired.lock(), 2);
        assert_eq!(k.sched_stats().calls, 2, "timers count as calls");
        assert_eq!(k.now(), 30);
    }

    /// The pillar of shard-count invariance: the committed (time, seq)
    /// order — and hence the audit hash — is identical for any shard count.
    #[test]
    fn commit_order_is_shard_count_invariant() {
        fn trace(shards: usize) -> (u64, Vec<Time>) {
            let mut k = Kernel::new(shards);
            let pids: Vec<Pid> = (0..8).map(|i| k.register_process(format!("p{i}"))).collect();
            let mut rng = dv_core::rng::SplitMix64::new(42);
            for step in 0..200u64 {
                let pid = pids[rng.next_below(8) as usize];
                let at = rng.next_below(1000);
                if step % 3 == 0 {
                    k.call_at(at, |_| {});
                } else {
                    let w = k.waker_for(pid);
                    k.wake_at(at, w);
                }
                // Commit a couple of events between pushes so generations
                // advance and some wakers go stale.
                if step % 5 == 0 {
                    let _ = k.pop_valid();
                }
            }
            let mut times = Vec::new();
            while let Some((t, _)) = k.pop_valid() {
                times.push(t);
            }
            (k.trace_hash(), times)
        }
        let (h1, t1) = trace(1);
        for shards in [2, 3, 4, 7] {
            let (h, t) = trace(shards);
            assert_eq!(h, h1, "hash must not depend on shard count (shards={shards})");
            assert_eq!(t, t1);
        }
    }
}
