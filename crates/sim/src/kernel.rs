//! The event kernel: virtual clock, ordered event queue, wakers.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dv_core::time::Time;

use crate::audit::OrderAudit;

/// Identifier of a simulated process.
pub type Pid = usize;

/// A one-shot handle to wake a parked process.
///
/// A waker is stamped with the *park generation* of the process at the time
/// it was created; if the process has been woken since (its generation
/// advanced), firing the waker is a silent no-op. This makes it safe to
/// leave stale wakers behind in wait queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waker {
    pub(crate) pid: Pid,
    pub(crate) generation: u64,
}

impl Waker {
    /// The process this waker targets.
    pub fn pid(&self) -> Pid {
        self.pid
    }
}

pub(crate) enum EventKind {
    Resume(Waker),
    Call(Box<dyn FnOnce(&mut Kernel) + Send>),
}

struct Event {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Sequence numbers break ties deterministically (FIFO).
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Scheduler activity counters, kept as plain integers so the hot
/// `pop_valid` loop pays no metrics overhead; `dv-sim` publishes them
/// into a `MetricsRegistry` once at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Committed `Resume` events (process wakeups that actually ran).
    pub resumes: u64,
    /// Committed `Call` events (kernel closures).
    pub calls: u64,
    /// Resume events discarded because their waker generation was stale.
    pub stale_wakeups: u64,
    /// Processes registered with the kernel.
    pub processes: u64,
}

/// The discrete-event kernel: the virtual clock plus the pending-event
/// queue. Shared behind a mutex; only one simulated process runs at a time,
/// so the lock is uncontended in steady state.
pub struct Kernel {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Event>,
    /// Park generation per process; a `Resume` event only fires if its
    /// waker's generation matches.
    pub(crate) park_generation: Vec<u64>,
    pub(crate) proc_names: Vec<String>,
    /// Rolling hash of every committed event (see [`OrderAudit`]).
    audit: OrderAudit,
    stats: SchedStats,
}

impl Kernel {
    pub(crate) fn new() -> Self {
        Self {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            park_generation: Vec::new(),
            proc_names: Vec::new(),
            audit: OrderAudit::new(),
            stats: SchedStats::default(),
        }
    }

    /// Scheduler activity counters accumulated so far.
    pub fn sched_stats(&self) -> SchedStats {
        self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// FNV hash of the event trace committed so far. Identical workloads
    /// must yield identical hashes — the runtime determinism check.
    pub fn trace_hash(&self) -> u64 {
        self.audit.hash()
    }

    /// Number of events committed to the trace so far.
    pub fn trace_events(&self) -> u64 {
        self.audit.events()
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, time: Time, kind: EventKind) {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    /// Schedule a closure to run inside the kernel at virtual time `at`
    /// (clamped to `now`). Closures run with the kernel locked: they may
    /// mutate shared state and fire wakers but must not block.
    pub fn call_at(&mut self, at: Time, f: impl FnOnce(&mut Kernel) + Send + 'static) {
        self.push(at, EventKind::Call(Box::new(f)));
    }

    /// Fire a waker at virtual time `at` (clamped to `now`).
    pub fn wake_at(&mut self, at: Time, waker: Waker) {
        self.push(at, EventKind::Resume(waker));
    }

    /// Fire a waker at the current virtual time.
    pub fn wake(&mut self, waker: Waker) {
        self.wake_at(self.now, waker);
    }

    /// Current waker for a process (see [`Waker`] for staleness rules).
    pub fn waker_for(&self, pid: Pid) -> Waker {
        Waker { pid, generation: self.park_generation[pid] }
    }

    pub(crate) fn register_process(&mut self, name: String) -> Pid {
        let pid = self.park_generation.len();
        self.park_generation.push(0);
        self.proc_names.push(name);
        self.stats.processes += 1;
        pid
    }

    /// Pop the next *valid* event, advancing the clock. Stale resumes are
    /// discarded. For a valid resume, the target's park generation is
    /// advanced so any duplicate wakeups for the same park become stale.
    pub(crate) fn pop_valid(&mut self) -> Option<(Time, EventKind)> {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.time >= self.now, "time went backwards");
            match ev.kind {
                EventKind::Resume(w) => {
                    if self.park_generation[w.pid] == w.generation {
                        self.park_generation[w.pid] = w.generation.wrapping_add(1);
                        self.now = ev.time;
                        self.audit.record_resume(ev.time, w.pid, w.generation);
                        self.stats.resumes += 1;
                        return Some((ev.time, EventKind::Resume(w)));
                    }
                    // Stale wakeup: drop silently (but count it).
                    self.stats.stale_wakeups += 1;
                }
                kind @ EventKind::Call(_) => {
                    self.now = ev.time;
                    self.audit.record_call(ev.time, ev.seq);
                    self.stats.calls += 1;
                    return Some((ev.time, kind));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_fifo_order() {
        let mut k = Kernel::new();
        let order = std::sync::Arc::new(dv_core::sync::Mutex::new(Vec::new()));
        for (tag, t) in [(0u32, 50u64), (1, 10), (2, 10), (3, 30)] {
            let order = order.clone();
            k.call_at(t, move |_| order.lock().push(tag));
        }
        while let Some((_, EventKind::Call(f))) = k.pop_valid() {
            f(&mut k);
        }
        // t=10 events in insertion order (1 before 2), then 30, then 50.
        assert_eq!(*order.lock(), vec![1, 2, 3, 0]);
        assert_eq!(k.now(), 50);
    }

    #[test]
    fn clock_clamps_past_times_to_now() {
        let mut k = Kernel::new();
        k.call_at(100, |_| {});
        let _ = k.pop_valid();
        assert_eq!(k.now(), 100);
        // Scheduling "in the past" lands at now.
        k.call_at(5, |_| {});
        let (t, _) = k.pop_valid().unwrap();
        assert_eq!(t, 100);
    }

    #[test]
    fn stale_wakers_are_dropped() {
        let mut k = Kernel::new();
        let pid = k.register_process("p".into());
        let w = k.waker_for(pid);
        k.wake_at(10, w);
        k.wake_at(20, w); // duplicate for the same park
        let (t, kind) = k.pop_valid().unwrap();
        assert_eq!(t, 10);
        assert!(matches!(kind, EventKind::Resume(_)));
        // The duplicate is now stale.
        assert!(k.pop_valid().is_none());
        assert_eq!(k.now(), 10, "stale events should not advance the clock past valid ones");
    }

    #[test]
    fn wakers_for_new_generation_fire() {
        let mut k = Kernel::new();
        let pid = k.register_process("p".into());
        let w0 = k.waker_for(pid);
        k.wake_at(10, w0);
        let _ = k.pop_valid().unwrap(); // generation now 1
        let w1 = k.waker_for(pid);
        assert_ne!(w0, w1);
        k.wake_at(30, w1);
        assert!(matches!(k.pop_valid(), Some((30, EventKind::Resume(_)))));
    }
}
