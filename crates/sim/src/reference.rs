//! The frozen pre-sharding scheduler, kept as the determinism oracle.
//!
//! This is the engine the crate shipped with before the sharded cooperative
//! rewrite: the host thread is a central scheduler that pops one event at a
//! time and, for resumes, performs a full `Sender<()>` / report-channel
//! round-trip with the target process (two context switches and two
//! allocating channel sends per handoff). It is deliberately left alone —
//! the same role `ReferenceSwitchSim` plays for the switch hot path — so
//! `tests/shard_invariance.rs` can prove the sharded engine bit-identical
//! against it: same workload, same [`OrderAudit`] hash, same metrics.
//!
//! The only change from the historical code is the `Timer` arm: `Port`
//! delivery now commits through pooled timer events on *both* engines, and
//! a timer commit hashes and counts exactly like the `call_at` closure it
//! replaced.
//!
//! [`OrderAudit`]: crate::audit::OrderAudit

use crate::kernel::EventKind;
use crate::sim::{publish_and_hash, Report, Sim, SlotWake};
use dv_core::time::Time;

impl Sim {
    /// The historical scheduler loop, verbatim (see module docs).
    pub(crate) fn run_reference(self) -> (Time, u64) {
        let metrics = self.shared.metrics.lock().clone();
        loop {
            let next = self.shared.kernel.lock().pop_valid();
            // Virtual-time telemetry sampling: advance the registry's
            // sampler to the event we are about to dispatch, so a sample
            // at boundary `b` captures exactly the events committed
            // before the first dispatch at or after `b`. Deterministic by
            // construction (keyed to the event sequence, never the host
            // clock); one relaxed atomic load when no series is attached.
            if let Some((t, _)) = &next {
                metrics.tick(*t);
            }
            match next {
                None => {
                    let live = self.shared.registry.lock().live_foreground;
                    if live > 0 {
                        let parked = self.parked_foreground_names_ref();
                        self.shutdown();
                        panic!(
                            "simulation deadlock: no pending events but {live} foreground \
                             process(es) still parked: {parked:?}"
                        );
                    }
                    break;
                }
                Some((_t, EventKind::Call(f))) => {
                    f(&mut self.shared.kernel.lock());
                }
                Some((_t, EventKind::Timer(id))) => {
                    let mut k = self.shared.kernel.lock();
                    if let Some(mut hook) = k.take_timer_hook(id) {
                        hook(&mut k);
                        k.put_timer_hook(id, hook);
                    }
                }
                Some((_t, EventKind::Resume(w))) => {
                    {
                        let reg = self.shared.registry.lock();
                        let slot = &reg.slots[w.pid()];
                        if slot.finished {
                            continue;
                        }
                        match &slot.wake {
                            SlotWake::Channel(tx) => {
                                tx.send(()).expect("process thread vanished")
                            }
                            SlotWake::Parker(_) => {
                                unreachable!("sharded slots cannot appear in the reference loop")
                            }
                        }
                    }
                    match self.report_rx.recv().expect("report channel closed") {
                        Report::Parked(_) => {}
                        Report::Finished(pid) => {
                            let live = {
                                let mut reg = self.shared.registry.lock();
                                let slot = &mut reg.slots[pid];
                                slot.finished = true;
                                if !slot.daemon {
                                    reg.live_foreground -= 1;
                                }
                                reg.live_foreground
                            };
                            if live == 0 {
                                // All foreground work done; any remaining
                                // events belong to daemons and are dropped.
                                break;
                            }
                        }
                        Report::Panicked(pid, msg) => {
                            let name = self.shared.kernel.lock().proc_names[pid].clone();
                            self.shutdown();
                            panic!("simulated process '{name}' panicked: {msg}");
                        }
                    }
                }
            }
        }
        let (now, hash) = publish_and_hash(&self.shared);
        self.shutdown();
        (now, hash)
    }

    fn parked_foreground_names_ref(&self) -> Vec<String> {
        // Take the pids under the registry lock alone, then resolve names
        // under the kernel lock alone — holding both invites lock-order
        // trouble (DV-W012) for no benefit on this cold error path.
        let pids: Vec<usize> = {
            let reg = self.shared.registry.lock();
            reg.slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.daemon && !s.finished)
                .map(|(pid, _)| pid)
                .collect()
        };
        let kernel = self.shared.kernel.lock();
        pids.into_iter().map(|pid| kernel.proc_names[pid].clone()).collect()
    }
}
