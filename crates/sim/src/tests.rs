//! Engine-level tests: determinism, ordering, blocking semantics.

use std::sync::Arc;

use dv_core::sync::Mutex;

use dv_core::time::{ns, us};

use crate::{JoinSlot, Pipe, Port, Sim, WaitSet};

#[test]
fn single_process_advances_time() {
    let sim = Sim::new();
    let out = JoinSlot::new();
    let out2 = out.clone();
    sim.spawn("p", move |ctx| {
        assert_eq!(ctx.now(), 0);
        ctx.delay(us(5));
        assert_eq!(ctx.now(), us(5));
        ctx.wait_until(us(3)); // already past: no-op
        assert_eq!(ctx.now(), us(5));
        out2.put(ctx.now());
    });
    let end = sim.run();
    assert_eq!(end, us(5));
    assert_eq!(out.take(), Some(us(5)));
}

#[test]
fn processes_interleave_by_virtual_time() {
    let sim = Sim::new();
    let log: Arc<Mutex<Vec<(u64, &str)>>> = Arc::new(Mutex::new(Vec::new()));
    for (name, step) in [("a", us(3)), ("b", us(2))] {
        let log = log.clone();
        sim.spawn(name, move |ctx| {
            for _ in 0..3 {
                ctx.delay(step);
                log.lock().push((ctx.now(), name));
            }
        });
    }
    sim.run();
    // a: 3,6,9  b: 2,4,6 -> merged by time, b's 6 after a's 6 (a spawned first, same timestamp resolves by event order).
    let times: Vec<u64> = log.lock().iter().map(|(t, _)| *t).collect();
    let mut sorted = times.clone();
    sorted.sort_unstable();
    assert_eq!(times, sorted, "events must be observed in time order: {:?}", log.lock());
    assert_eq!(times, vec![us(2), us(3), us(4), us(6), us(6), us(9)]);
}

#[test]
fn port_blocks_until_delivery() {
    let sim = Sim::new();
    let port: Port<u32> = Port::new();
    let p2 = port.clone();
    let got = JoinSlot::new();
    let got2 = got.clone();
    sim.spawn("recv", move |ctx| {
        let (at, msg) = p2.recv(ctx);
        got2.put((at, msg, ctx.now()));
    });
    let p3 = port.clone();
    sim.spawn("send", move |ctx| {
        ctx.delay(us(1));
        p3.send_delayed(ctx, ns(500), 42);
    });
    sim.run();
    let (at, msg, woke) = got.take().unwrap();
    assert_eq!(msg, 42);
    assert_eq!(at, us(1) + ns(500));
    assert_eq!(woke, at);
}

#[test]
fn port_deadline_times_out() {
    let sim = Sim::new();
    let port: Port<u32> = Port::new();
    let got = JoinSlot::new();
    let (p2, g2) = (port.clone(), got.clone());
    sim.spawn("recv", move |ctx| {
        let r = p2.recv_deadline(ctx, us(2));
        g2.put((r.is_none(), ctx.now()));
    });
    sim.run();
    let (timed_out, at) = got.take().unwrap();
    assert!(timed_out);
    assert_eq!(at, us(2));
}

#[test]
fn port_deadline_returns_early_message() {
    let sim = Sim::new();
    let port: Port<u32> = Port::new();
    let got = JoinSlot::new();
    let (p2, g2) = (port.clone(), got.clone());
    sim.spawn("recv", move |ctx| {
        g2.put(p2.recv_deadline(ctx, us(10)));
    });
    let p3 = port.clone();
    sim.spawn("send", move |ctx| p3.send_delayed(ctx, us(1), 7));
    sim.run();
    assert_eq!(got.take().unwrap(), Some((us(1), 7)));
}

#[test]
fn messages_arrive_in_delivery_time_order() {
    let sim = Sim::new();
    let port: Port<u32> = Port::new();
    let got = JoinSlot::new();
    let (p2, g2) = (port.clone(), got.clone());
    sim.spawn("recv", move |ctx| {
        let mut v = Vec::new();
        for _ in 0..3 {
            v.push(p2.recv(ctx).1);
        }
        g2.put(v);
    });
    let p3 = port.clone();
    sim.spawn("send", move |ctx| {
        // Sent in one order, delivered in delay order.
        p3.send_delayed(ctx, us(3), 1);
        p3.send_delayed(ctx, us(1), 2);
        p3.send_delayed(ctx, us(2), 3);
    });
    sim.run();
    assert_eq!(got.take().unwrap(), vec![2, 3, 1]);
}

#[test]
fn waitset_wakes_all_waiters() {
    let sim = Sim::new();
    let ws = WaitSet::new();
    let flag = Arc::new(Mutex::new(false));
    let done = Arc::new(Mutex::new(0usize));
    for i in 0..4 {
        let (ws, flag, done) = (ws.clone(), flag.clone(), done.clone());
        sim.spawn(format!("w{i}"), move |ctx| {
            ws.wait_while(ctx, || !*flag.lock());
            *done.lock() += 1;
        });
    }
    let (ws2, flag2) = (ws.clone(), flag.clone());
    sim.spawn("setter", move |ctx| {
        ctx.delay(us(7));
        *flag2.lock() = true;
        ws2.wake_all_ctx(ctx);
    });
    let end = sim.run();
    assert_eq!(*done.lock(), 4);
    assert_eq!(end, us(7));
}

#[test]
fn pipe_serializes_transfers() {
    let pipe = Pipe::new(1.0); // 1 GB/s => 1000 bytes take 1000 ns
    let (s1, e1) = pipe.reserve(0, 1000);
    assert_eq!((s1, e1), (0, ns(1000)));
    // Second transfer queued behind the first even though requested at t=0.
    let (s2, e2) = pipe.reserve(0, 500);
    assert_eq!((s2, e2), (ns(1000), ns(1500)));
    // A transfer requested after the pipe is free starts immediately.
    let (s3, _e3) = pipe.reserve(ns(5000), 100);
    assert_eq!(s3, ns(5000));
    assert_eq!(pipe.busy_time(), ns(1600));
}

#[test]
fn spawned_children_run() {
    let sim = Sim::new();
    let count = Arc::new(Mutex::new(0usize));
    let c2 = count.clone();
    sim.spawn("parent", move |ctx| {
        for i in 0..3 {
            let c = c2.clone();
            ctx.spawn(format!("child{i}"), move |cctx| {
                cctx.delay(us(1));
                *c.lock() += 1;
            });
        }
        ctx.delay(us(10));
    });
    sim.run();
    assert_eq!(*count.lock(), 3);
}

#[test]
fn daemons_do_not_block_termination() {
    let sim = Sim::new();
    let port: Port<u32> = Port::new();
    let p2 = port.clone();
    sim.spawn_daemon("poller", move |ctx| {
        // Blocks forever: no one ever sends.
        let _ = p2.recv(ctx);
        unreachable!("daemon should be torn down while parked");
    });
    sim.spawn("worker", |ctx| ctx.delay(us(3)));
    assert_eq!(sim.run(), us(3));
}

#[test]
#[should_panic(expected = "deadlock")]
fn deadlock_is_reported() {
    let sim = Sim::new();
    let port: Port<u32> = Port::new();
    sim.spawn("stuck", move |ctx| {
        let _ = port.recv(ctx);
    });
    sim.run();
}

#[test]
#[should_panic(expected = "boom")]
fn process_panics_propagate() {
    let sim = Sim::new();
    sim.spawn("bad", |ctx| {
        ctx.delay(us(1));
        panic!("boom");
    });
    sim.run();
}

/// The determinism guarantee everything else relies on: identical programs
/// produce identical event traces.
#[test]
fn simulation_is_deterministic() {
    fn run_once(seed: u64) -> Vec<(u64, usize, u64)> {
        let sim = Sim::new();
        let log: Arc<Mutex<Vec<(u64, usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let ports: Vec<Port<u64>> = (0..4).map(|_| Port::new()).collect();
        for me in 0..4usize {
            let log = log.clone();
            let ports = ports.clone();
            sim.spawn(format!("n{me}"), move |ctx| {
                let mut rng = dv_core::rng::SplitMix64::new(seed ^ me as u64);
                for round in 0..20 {
                    let dst = rng.next_below(4) as usize;
                    let delay = ns(1 + rng.next_below(1000));
                    ports[dst].send_delayed(ctx, delay, (me as u64) << 32 | round);
                    ctx.delay(ns(1 + rng.next_below(200)));
                    while let Some((at, msg)) = ports[me].try_recv() {
                        log.lock().push((at, me, msg));
                    }
                }
                // Drain what's left with a deadline.
                while let Some((at, msg)) = ports[me].recv_deadline(ctx, ctx.now() + us(10)) {
                    log.lock().push((at, me, msg));
                }
            });
        }
        sim.run();
        let v = log.lock().clone();
        assert_eq!(v.len(), 80, "every message must be received exactly once");
        v
    }
    let a = run_once(1234);
    let b = run_once(1234);
    assert_eq!(a, b);
    let c = run_once(99);
    assert_ne!(a, c, "different seeds should change the trace");
}
