//! # dv-sim — deterministic process-oriented discrete-event simulation
//!
//! Every benchmark in this workspace runs on a *simulated* cluster: node
//! programs are ordinary Rust closures doing **real computation on real
//! data**, while time — compute charges, PCIe transfers, switch traversals,
//! MPI protocol costs — is **virtual**, advanced by a discrete-event kernel.
//!
//! ## Execution model
//!
//! * Each simulated process (one per cluster node, plus helper daemons) runs
//!   on its own OS thread, but **exactly one process executes at a time**.
//!   This makes the simulation fully deterministic — same seeds in, same
//!   event trace out — while letting node programs be written as
//!   straight-line imperative code with blocking calls (`recv`,
//!   `wait_until`, `barrier`).
//! * On the default **sharded cooperative engine** ([`Engine::Sharded`])
//!   there is no scheduler thread: a single *run token* circulates among
//!   the process threads, and whichever thread parks becomes the
//!   dispatcher — it commits events from per-shard queues in a
//!   conservative global merge and hands the token directly to the next
//!   process (see `sim.rs` module docs). The frozen pre-sharding scheduler
//!   is kept behind [`Engine::Reference`] as the determinism oracle.
//! * Events are committed in `(virtual time, insertion sequence)` order;
//!   ties resolve in insertion order, so no ordering depends on OS thread
//!   scheduling, shard count, or engine choice.
//! * Wakeups are *generation-stamped*: a [`Waker`] captures the target
//!   process's park generation, and stale wakeups (for parks that already
//!   ended) are dropped by the scheduler. Blocking primitives therefore
//!   follow the standard re-check loop and tolerate spurious wakeups by
//!   construction.
//!
//! ## Building blocks
//!
//! * [`Sim`] / [`SimCtx`] — the kernel and the per-process capability.
//! * [`Port`] — a typed message queue in virtual time (the basis for NICs).
//! * [`WaitSet`] — virtual-time condition variable.
//! * [`Pipe`] — a FIFO bandwidth server (PCIe bus, NIC link, switch port).
//! * [`JoinSlot`] — collect a value from a finished process.
//! * [`OrderAudit`] — rolling hash of the committed event trace; the
//!   runtime determinism check behind [`Sim::run_hashed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod kernel;
mod parker;
mod reference;
mod sim;
mod sync;

pub use audit::OrderAudit;
pub use dv_core::spec::Engine;
pub use kernel::{Kernel, Pid, SchedStats, TimerId, Waker};
pub use sim::{Sim, SimCtx};
pub use sync::{JoinSlot, Pipe, Port, WaitSet};

#[cfg(test)]
mod tests;
