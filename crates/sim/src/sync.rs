//! Virtual-time synchronization and queueing primitives.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use dv_core::sync::Mutex;

use dv_core::time::{self, Time};

use crate::kernel::{Kernel, TimerId, Waker};
use crate::sim::SimCtx;

/// A virtual-time condition variable: processes register their waker and
/// park; anyone (a process or a kernel closure) can wake all registered
/// waiters. Stale wakers are harmless, so waiters simply re-register on
/// every iteration of their re-check loop.
#[derive(Clone, Default)]
pub struct WaitSet {
    waiters: Arc<Mutex<Vec<Waker>>>,
}

impl WaitSet {
    /// Empty wait set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the calling process. Follow with [`SimCtx::park`].
    pub fn register(&self, ctx: &SimCtx) {
        self.waiters.lock().push(ctx.waker());
    }

    /// Wake every registered waiter at the kernel's current time.
    pub fn wake_all(&self, kernel: &mut Kernel) {
        for w in self.waiters.lock().drain(..) {
            kernel.wake(w);
        }
    }

    /// Wake every registered waiter, from process context.
    pub fn wake_all_ctx(&self, ctx: &SimCtx) {
        ctx.with_kernel(|k| self.wake_all(k));
    }

    /// Block the calling process until `pred` returns true. `pred` runs
    /// with no locks held by this module; it should check shared state.
    pub fn wait_while(&self, ctx: &SimCtx, mut pred: impl FnMut() -> bool) {
        // `pred` is "still waiting?" — loop while true.
        while pred() {
            self.register(ctx);
            ctx.park();
        }
    }

    /// Number of currently registered wakers (stale ones included).
    pub fn len(&self) -> usize {
        self.waiters.lock().len()
    }

    /// True if nobody is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A message staged for future delivery: invisible to receivers until its
/// pooled timer event commits.
struct Staged<T> {
    /// Delivery time, already clamped to the kernel clock at staging time —
    /// the same clamp the kernel applies when it enqueues the timer event,
    /// so heap order here matches commit order there exactly.
    at: Time,
    /// Per-port staging sequence; breaks delivery-time ties in send order,
    /// mirroring the kernel's global insertion sequence.
    seq: u64,
    msg: T,
}

impl<T> PartialEq for Staged<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<T> Eq for Staged<T> {}
impl<T> PartialOrd for Staged<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Staged<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest delivery.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct PortState<T> {
    queue: VecDeque<(Time, T)>,
    waiters: Vec<Waker>,
    /// Messages in flight, ordered by `(at, seq)`.
    staged: BinaryHeap<Staged<T>>,
    stage_seq: u64,
    /// The port's pooled delivery timer, registered on first send. Every
    /// delivery reuses it, so steady-state sends allocate nothing.
    timer: Option<TimerId>,
}

/// A typed message queue in virtual time.
///
/// Senders deliver messages *at a future virtual time* (modeling link
/// latency); receivers block until a message is visible. Messages become
/// visible in delivery-time order (ties: send order), which the network
/// models above this layer use to implement both in-order (MPI) and
/// deliberately reordered (Data Vortex) delivery.
pub struct Port<T> {
    state: Arc<Mutex<PortState<T>>>,
}

impl<T> Clone for Port<T> {
    fn clone(&self) -> Self {
        Self { state: Arc::clone(&self.state) }
    }
}

impl<T: Send + 'static> Default for Port<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> Port<T> {
    /// New empty port.
    pub fn new() -> Self {
        Self {
            state: Arc::new(Mutex::new(PortState {
                queue: VecDeque::new(),
                waiters: Vec::new(),
                staged: BinaryHeap::new(),
                stage_seq: 0,
                timer: None,
            })),
        }
    }

    /// Deliver `msg` at virtual time `at` (kernel context).
    ///
    /// The message is *staged* (invisible) and a pooled per-port timer
    /// event commits it at `at` — one copyable kernel event per message
    /// instead of the boxed closure the engine used historically. The
    /// timer commit hashes and counts exactly like the closure did, and
    /// each firing makes exactly one staged message visible, so receiver
    /// visibility between commits is unchanged.
    pub fn deliver_at(&self, kernel: &mut Kernel, at: Time, msg: T) {
        // Clamp before staging with the same rule the kernel applies on
        // push, so the staged heap and the kernel queue agree on order.
        let at = at.max(kernel.now());
        let timer = {
            let mut s = self.state.lock();
            let seq = s.stage_seq;
            s.stage_seq += 1;
            s.staged.push(Staged { at, seq, msg });
            s.timer
        };
        let id = match timer {
            Some(id) => id,
            None => {
                let state = Arc::clone(&self.state);
                let id = kernel.register_timer(Box::new(move |k: &mut Kernel| {
                    let mut s = state.lock();
                    if let Some(staged) = s.staged.pop() {
                        let arrived = k.now();
                        s.queue.push_back((arrived, staged.msg));
                        for w in s.waiters.drain(..) {
                            k.wake(w);
                        }
                    }
                }));
                self.state.lock().timer = Some(id);
                id
            }
        };
        kernel.timer_at(at, id);
    }

    /// Deliver `msg` after `delay`, from process context.
    pub fn send_delayed(&self, ctx: &SimCtx, delay: Time, msg: T) {
        ctx.with_kernel(|k| {
            let at = k.now() + delay;
            self.deliver_at(k, at, msg);
        });
    }

    /// Non-blocking receive; returns the message and its arrival time.
    pub fn try_recv(&self) -> Option<(Time, T)> {
        self.state.lock().queue.pop_front()
    }

    /// Blocking receive.
    pub fn recv(&self, ctx: &SimCtx) -> (Time, T) {
        loop {
            {
                let mut s = self.state.lock();
                if let Some(m) = s.queue.pop_front() {
                    return m;
                }
                s.waiters.push(ctx.waker());
            }
            ctx.park();
        }
    }

    /// Blocking receive with a deadline; `None` if virtual time reaches
    /// `deadline` first.
    pub fn recv_deadline(&self, ctx: &SimCtx, deadline: Time) -> Option<(Time, T)> {
        loop {
            {
                let mut s = self.state.lock();
                if let Some(m) = s.queue.pop_front() {
                    return Some(m);
                }
                if ctx.now() >= deadline {
                    return None;
                }
                s.waiters.push(ctx.waker());
            }
            ctx.with_kernel(|k| {
                let w = k.waker_for(ctx.pid());
                k.wake_at(deadline, w);
            });
            ctx.park();
        }
    }

    /// Messages currently visible.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// True if no message is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct PipeState {
    free_at: Time,
    gbps: f64,
    busy: Time,
}

/// A FIFO bandwidth server: a shared link (PCIe bus, NIC port, switch
/// injection port) that serializes transfers at a fixed byte rate.
///
/// `reserve` returns when the transfer *occupies* the link: callers decide
/// whether to wait for the start (cut-through) or the end (store-and-
/// forward) of their occupancy.
#[derive(Clone)]
pub struct Pipe {
    state: Arc<Mutex<PipeState>>,
}

impl Pipe {
    /// A pipe streaming at `gbps` gigabytes per second.
    pub fn new(gbps: f64) -> Self {
        assert!(gbps > 0.0);
        Self { state: Arc::new(Mutex::new(PipeState { free_at: 0, gbps, busy: 0 })) }
    }

    /// Reserve the pipe for `bytes` starting no earlier than `now`;
    /// returns `(start, end)` of the occupancy in virtual time.
    pub fn reserve(&self, now: Time, bytes: u64) -> (Time, Time) {
        let mut s = self.state.lock();
        let start = s.free_at.max(now);
        let dur = time::transfer_time(bytes, s.gbps);
        let end = start + dur;
        s.free_at = end;
        s.busy += dur;
        (start, end)
    }

    /// Reserve with an explicit duration instead of a byte count.
    pub fn reserve_duration(&self, now: Time, duration: Time) -> (Time, Time) {
        let mut s = self.state.lock();
        let start = s.free_at.max(now);
        let end = start + duration;
        s.free_at = end;
        s.busy += duration;
        (start, end)
    }

    /// The earliest time a new transfer could start.
    pub fn free_at(&self) -> Time {
        self.state.lock().free_at
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_time(&self) -> Time {
        self.state.lock().busy
    }

    /// The configured rate in GB/s.
    pub fn gbps(&self) -> f64 {
        self.state.lock().gbps
    }
}

/// A slot for collecting one value out of a finished process.
pub struct JoinSlot<T> {
    value: Arc<Mutex<Option<T>>>,
}

impl<T> Clone for JoinSlot<T> {
    fn clone(&self) -> Self {
        Self { value: Arc::clone(&self.value) }
    }
}

impl<T: Send + 'static> Default for JoinSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> JoinSlot<T> {
    /// Empty slot.
    pub fn new() -> Self {
        Self { value: Arc::new(Mutex::new(None)) }
    }

    /// Store the result (typically the last statement of a process body).
    pub fn put(&self, value: T) {
        *self.value.lock() = Some(value);
    }

    /// Take the result after `Sim::run` returned.
    pub fn take(&self) -> Option<T> {
        self.value.lock().take()
    }
}
