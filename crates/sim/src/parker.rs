//! Per-process parking for the cooperative engine.
//!
//! Each simulated process owns one [`Parker`]. The dispatcher *grants* the
//! parker to hand the process the run token; the process *waits* on it
//! inside `SimCtx::park`. Exactly one grant is outstanding at a time (the
//! engine's single-active-process invariant), so the parker is a one-shot
//! token cell, not a counting semaphore.
//!
//! Two fast paths keep steady-state handoffs cheap:
//!
//! * A grant that lands before the process reaches `wait()` is consumed
//!   with one atomic exchange — no lock, no syscall.
//! * [`Parker::prewake`] lifts a sleeping process into a short spin loop
//!   *before* its resume commits, so when the grant arrives the handoff is
//!   a store observed by a spinning core instead of a futex wake. The
//!   dispatcher uses the next pending event as the hint; a wrong hint
//!   costs a bounded spin, never correctness.
//!
//! All flag transitions use acquire/release ordering; the condvar mutex
//! carries no data (the flag is the protocol) and exists only so sleeps
//! and wakes cannot miss each other.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};

/// Parker is idle: no grant pending, owner not sleeping.
const EMPTY: u32 = 0;
/// Owner is (or is about to be) asleep on the condvar.
const SLEEPING: u32 = 1;
/// A grant is pending; the next `wait` returns immediately.
const GRANTED: u32 = 2;
/// Hint that a grant is imminent: owner spins briefly instead of sleeping.
const STANDBY: u32 = 3;
/// Simulation is tearing down; `wait` returns `Err` forever.
const SHUTDOWN: u32 = 4;

/// Spin iterations a pre-woken process burns before going back to sleep.
/// Sized for the gap between a pre-wake hint and the actual grant: one
/// process timeslice (typically well under a microsecond of user code plus
/// one event commit).
const STANDBY_SPINS: u32 = 8_192;

/// Returned by [`Parker::wait`] when the simulation is shutting down; the
/// caller unwinds its thread.
pub(crate) struct Torn;

pub(crate) struct Parker {
    flag: AtomicU32,
    lock: StdMutex<()>,
    cv: Condvar,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Self { flag: AtomicU32::new(EMPTY), lock: StdMutex::new(()), cv: Condvar::new() }
    }

    /// Hand the owner the run token. At most one grant may be outstanding.
    pub(crate) fn grant(&self) {
        let prev = self.flag.swap(GRANTED, Ordering::AcqRel);
        debug_assert!(prev != GRANTED, "double grant: two processes active at once");
        if prev == SLEEPING {
            // Take the lock so the notify cannot fire between the owner's
            // flag check and its condvar wait.
            let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            self.cv.notify_one();
        }
    }

    /// Best-effort hint that a grant is coming soon: lift the owner out of
    /// its condvar sleep into a spin loop. Never overrides a pending grant
    /// or shutdown.
    pub(crate) fn prewake(&self) {
        let mut cur = self.flag.load(Ordering::Acquire);
        loop {
            if cur != EMPTY && cur != SLEEPING {
                return;
            }
            match self.flag.compare_exchange_weak(
                cur,
                STANDBY,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(prev) => {
                    if prev == SLEEPING {
                        let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
                        self.cv.notify_one();
                    }
                    return;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Tear down: every current and future `wait` returns `Err(Torn)`.
    pub(crate) fn shutdown(&self) {
        let prev = self.flag.swap(SHUTDOWN, Ordering::AcqRel);
        if prev == SLEEPING {
            let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            self.cv.notify_one();
        }
    }

    /// Block until granted (or shutdown). Consumes the grant.
    pub(crate) fn wait(&self) -> Result<(), Torn> {
        let mut spins = 0u32;
        loop {
            match self.flag.compare_exchange(
                GRANTED,
                EMPTY,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(SHUTDOWN) => return Err(Torn),
                Err(STANDBY) => {
                    // Pre-woken: the grant should be close. Spin, then give
                    // up and fall through to a real sleep.
                    spins += 1;
                    if spins < STANDBY_SPINS {
                        std::hint::spin_loop();
                        continue;
                    }
                    spins = 0;
                    let _ = self.flag.compare_exchange(
                        STANDBY,
                        EMPTY,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    continue;
                }
                Err(_) => {}
            }
            // Slow path: publish that we are sleeping, then wait. The
            // re-check under the lock pairs with grant/prewake/shutdown
            // taking the same lock before notifying.
            let mut g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            if self
                .flag
                .compare_exchange(EMPTY, SLEEPING, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // A grant/standby/shutdown raced in; handle it above.
                continue;
            }
            while self.flag.load(Ordering::Acquire) == SLEEPING {
                g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grant_before_wait_is_consumed_without_sleeping() {
        let p = Parker::new();
        p.grant();
        assert!(p.wait().is_ok());
    }

    #[test]
    fn wait_blocks_until_granted() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || p2.wait().is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        p.grant();
        assert!(h.join().unwrap());
    }

    #[test]
    fn shutdown_unblocks_waiters_forever() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || p2.wait().is_err());
        std::thread::sleep(std::time::Duration::from_millis(20));
        p.shutdown();
        assert!(h.join().unwrap());
        assert!(p.wait().is_err(), "shutdown is sticky");
    }

    #[test]
    fn prewake_then_grant_hands_off() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || p2.wait().is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        p.prewake();
        p.grant();
        assert!(h.join().unwrap());
    }

    #[test]
    fn prewake_does_not_clobber_a_grant() {
        let p = Parker::new();
        p.grant();
        p.prewake();
        assert!(p.wait().is_ok());
    }

    #[test]
    fn token_round_trips_many_times() {
        let p = Arc::new(Parker::new());
        let q = Arc::new(Parker::new());
        let (p2, q2) = (Arc::clone(&p), Arc::clone(&q));
        let h = std::thread::spawn(move || {
            for _ in 0..10_000 {
                if p2.wait().is_err() {
                    return false;
                }
                q2.grant();
            }
            true
        });
        for _ in 0..10_000 {
            p.grant();
            assert!(q.wait().is_ok());
        }
        assert!(h.join().unwrap());
    }
}
