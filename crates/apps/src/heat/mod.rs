//! The 3-D heat equation (Figure 9, "Heat").
//!
//! Explicit FTCS on a 3-D grid with zero (Dirichlet) boundaries and a
//! 3-D domain decomposition: "each process needs to communicate with
//! several neighbors, which results in a large number of small messages
//! sent over the network" (Section VII). Every step exchanges six halo
//! faces and applies the 7-point stencil.
//!
//! The distributed solvers ([`mpi`], [`dv`]) run arithmetic identical to
//! [`SerialHeat`], so tests validate exact equality.

pub mod dv;
pub mod mpi;

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct HeatConfig {
    /// Global cells per side (x, y, z).
    pub n: (usize, usize, usize),
    /// Node grid (px, py, pz); `px·py·pz` = node count.
    pub grid: (usize, usize, usize),
    /// Diffusion number `r = κ·dt/h²` (stability: `r ≤ 1/6`).
    pub r: f64,
    /// Time steps.
    pub steps: usize,
    /// Report global heat every this many steps (an allreduce).
    pub report_every: usize,
    /// MPI halo-exchange strategy (the Data Vortex implementation always
    /// uses one source-aggregated DMA batch per step).
    pub halo: Halo,
}

/// Halo-exchange strategy for the MPI implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halo {
    /// One message per line of each face, all posted up front — the
    /// paper's "large number of small messages", the most pessimistic
    /// baseline.
    Line,
    /// The textbook exchange: six sequential face shifts, each a
    /// send+receive pair whose wire latency sits on the critical path.
    /// This is the default and matches era-typical application code.
    Face,
    /// One message per face, all six posted before any receive — the
    /// strongest (most overlapped) MPI baseline, for ablations.
    FaceOverlapped,
}

impl HeatConfig {
    /// Small test problem on 8 nodes (2×2×2).
    pub fn test_small() -> Self {
        Self { n: (16, 16, 16), grid: (2, 2, 2), r: 0.1, steps: 4, report_every: 2, halo: Halo::Line }
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.grid.0 * self.grid.1 * self.grid.2
    }

    /// Local block size (must divide evenly).
    pub fn local(&self) -> (usize, usize, usize) {
        assert_eq!(self.n.0 % self.grid.0, 0);
        assert_eq!(self.n.1 % self.grid.1, 0);
        assert_eq!(self.n.2 % self.grid.2, 0);
        (self.n.0 / self.grid.0, self.n.1 / self.grid.1, self.n.2 / self.grid.2)
    }

    /// Node id → grid coordinates (x-major).
    pub fn coords(&self, node: usize) -> (usize, usize, usize) {
        let (px, py, _) = self.grid;
        (node % px, (node / px) % py, node / (px * py))
    }

    /// Grid coordinates → node id; `None` outside the grid.
    #[allow(clippy::manual_map)]
    pub fn node_at(&self, c: (isize, isize, isize)) -> Option<usize> {
        let (px, py, pz) = self.grid;
        if c.0 < 0 || c.1 < 0 || c.2 < 0 {
            return None;
        }
        let (x, y, z) = (c.0 as usize, c.1 as usize, c.2 as usize);
        if x >= px || y >= py || z >= pz {
            None
        } else {
            Some((z * py + y) * px + x)
        }
    }
}

/// The exact stencil expression both solvers share (term order matters
/// for bit-exact validation).
#[inline]
#[allow(clippy::too_many_arguments)] // one argument per stencil neighbor
pub fn stencil(center: f64, xm: f64, xp: f64, ym: f64, yp: f64, zm: f64, zp: f64, r: f64) -> f64 {
    center + r * (xm + xp + ym + yp + zm + zp - 6.0 * center)
}

/// Initial condition: a hot Gaussian blob off-center.
pub fn initial_temperature(x: f64, y: f64, z: f64) -> f64 {
    let d2 = (x - 0.3).powi(2) + (y - 0.4).powi(2) + (z - 0.55).powi(2);
    (-d2 / 0.02).exp()
}

/// Serial reference solver.
pub struct SerialHeat {
    /// Grid dims.
    pub n: (usize, usize, usize),
    /// Row-major `[z][y][x]` field.
    pub u: Vec<f64>,
    r: f64,
}

impl SerialHeat {
    /// Initialize on the unit cube.
    pub fn new(cfg: &HeatConfig) -> Self {
        let (nx, ny, nz) = cfg.n;
        let mut u = vec![0.0; nx * ny * nz];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    u[(k * ny + j) * nx + i] = initial_temperature(
                        (i as f64 + 0.5) / nx as f64,
                        (j as f64 + 0.5) / ny as f64,
                        (k as f64 + 0.5) / nz as f64,
                    );
                }
            }
        }
        Self { n: cfg.n, u, r: cfg.r }
    }

    fn at(&self, i: isize, j: isize, k: isize) -> f64 {
        let (nx, ny, nz) = self.n;
        if i < 0 || j < 0 || k < 0 || i >= nx as isize || j >= ny as isize || k >= nz as isize {
            0.0 // Dirichlet boundary
        } else {
            self.u[((k as usize) * ny + j as usize) * nx + i as usize]
        }
    }

    /// One FTCS step.
    pub fn step(&mut self) {
        let (nx, ny, nz) = self.n;
        let mut next = vec![0.0; self.u.len()];
        for k in 0..nz as isize {
            for j in 0..ny as isize {
                for i in 0..nx as isize {
                    next[((k as usize) * ny + j as usize) * nx + i as usize] = stencil(
                        self.at(i, j, k),
                        self.at(i - 1, j, k),
                        self.at(i + 1, j, k),
                        self.at(i, j - 1, k),
                        self.at(i, j + 1, k),
                        self.at(i, j, k - 1),
                        self.at(i, j, k + 1),
                        self.r,
                    );
                }
            }
        }
        self.u = next;
    }

    /// Total heat (decays monotonically with Dirichlet boundaries).
    pub fn total_heat(&self) -> f64 {
        self.u.iter().sum()
    }
}

/// Halo-face directions in the receiver's frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Face {
    /// −x ghost plane.
    Xm,
    /// +x ghost plane.
    Xp,
    /// −y ghost plane.
    Ym,
    /// +y ghost plane.
    Yp,
    /// −z ghost plane.
    Zm,
    /// +z ghost plane.
    Zp,
}

impl Face {
    /// All six, in exchange order.
    pub const ALL: [Face; 6] = [Face::Xm, Face::Xp, Face::Ym, Face::Yp, Face::Zm, Face::Zp];

    /// Index 0..6.
    pub fn index(self) -> usize {
        Face::ALL.iter().position(|&f| f == self).unwrap()
    }

    /// The face a neighbor fills when I send it this one.
    pub fn opposite(self) -> Face {
        match self {
            Face::Xm => Face::Xp,
            Face::Xp => Face::Xm,
            Face::Ym => Face::Yp,
            Face::Yp => Face::Ym,
            Face::Zm => Face::Zp,
            Face::Zp => Face::Zm,
        }
    }

    /// Unit offset in node-grid coordinates.
    pub fn offset(self) -> (isize, isize, isize) {
        match self {
            Face::Xm => (-1, 0, 0),
            Face::Xp => (1, 0, 0),
            Face::Ym => (0, -1, 0),
            Face::Yp => (0, 1, 0),
            Face::Zm => (0, 0, -1),
            Face::Zp => (0, 0, 1),
        }
    }
}

/// One node's sub-block with a one-cell ghost shell.
pub struct LocalBlock {
    /// Local interior dims.
    pub dims: (usize, usize, usize),
    /// Field with ghosts: `(nx+2)·(ny+2)·(nz+2)`, `[z][y][x]`.
    pub u: Vec<f64>,
    /// This node's grid coordinates.
    pub coords: (usize, usize, usize),
}

impl LocalBlock {
    /// Initialize this node's block of the global problem.
    pub fn new(cfg: &HeatConfig, node: usize) -> Self {
        let (nxl, nyl, nzl) = cfg.local();
        let coords = cfg.coords(node);
        let (gx, gy, gz) = (coords.0 * nxl, coords.1 * nyl, coords.2 * nzl);
        let (nx, ny, nz) = cfg.n;
        let mut block = Self { dims: (nxl, nyl, nzl), u: vec![0.0; (nxl + 2) * (nyl + 2) * (nzl + 2)], coords };
        for k in 0..nzl {
            for j in 0..nyl {
                for i in 0..nxl {
                    let v = initial_temperature(
                        ((gx + i) as f64 + 0.5) / nx as f64,
                        ((gy + j) as f64 + 0.5) / ny as f64,
                        ((gz + k) as f64 + 0.5) / nz as f64,
                    );
                    let idx = block.idx(i as isize, j as isize, k as isize);
                    block.u[idx] = v;
                }
            }
        }
        block
    }

    /// Index into the ghosted array (interior coords; −1 and `dim` hit
    /// ghosts).
    #[inline]
    pub fn idx(&self, i: isize, j: isize, k: isize) -> usize {
        let (nxl, nyl, _) = self.dims;
        (((k + 1) as usize) * (nyl + 2) + (j + 1) as usize) * (nxl + 2) + (i + 1) as usize
    }

    /// Number of lines in a face plane (the unit of the paper's
    /// fine-grained halo messages): one line per fixed outer coordinate.
    pub fn face_lines(&self, f: Face) -> usize {
        let (_, nyl, nzl) = self.dims;
        match f {
            Face::Xm | Face::Xp => nzl,
            Face::Ym | Face::Yp => nzl,
            Face::Zm | Face::Zp => nyl,
        }
    }

    /// Cells per line of a face.
    pub fn line_len(&self, f: Face) -> usize {
        self.face_len(f) / self.face_lines(f)
    }

    /// Number of cells in a face plane.
    pub fn face_len(&self, f: Face) -> usize {
        let (nxl, nyl, nzl) = self.dims;
        match f {
            Face::Xm | Face::Xp => nyl * nzl,
            Face::Ym | Face::Yp => nxl * nzl,
            Face::Zm | Face::Zp => nxl * nyl,
        }
    }

    fn face_coords(&self, f: Face, ghost: bool) -> impl Iterator<Item = (isize, isize, isize)> + '_ {
        let (nxl, nyl, nzl) = self.dims;
        let fixed = |interior_lo: isize, interior_hi: isize| if ghost {
            if matches!(f, Face::Xm | Face::Ym | Face::Zm) { interior_lo - 1 } else { interior_hi + 1 }
        } else if matches!(f, Face::Xm | Face::Ym | Face::Zm) {
            interior_lo
        } else {
            interior_hi
        };
        let (a_max, b_max) = match f {
            Face::Xm | Face::Xp => (nzl, nyl),
            Face::Ym | Face::Yp => (nzl, nxl),
            Face::Zm | Face::Zp => (nyl, nxl),
        };
        let fx = fixed(0, nxl as isize - 1);
        let fy = fixed(0, nyl as isize - 1);
        let fz = fixed(0, nzl as isize - 1);
        (0..a_max).flat_map(move |a| {
            (0..b_max).map(move |b| match f {
                Face::Xm | Face::Xp => (fx, b as isize, a as isize),
                Face::Ym | Face::Yp => (b as isize, fy, a as isize),
                Face::Zm | Face::Zp => (b as isize, a as isize, fz),
            })
        })
    }

    /// Copy my boundary plane adjacent to face `f` (what the neighbor in
    /// that direction needs as its ghost).
    pub fn gather_face(&self, f: Face) -> Vec<f64> {
        self.face_coords(f, false).map(|(i, j, k)| self.u[self.idx(i, j, k)]).collect()
    }

    /// Fill the ghost plane of face `f`.
    pub fn set_ghost(&mut self, f: Face, data: &[f64]) {
        debug_assert_eq!(data.len(), self.face_len(f));
        let coords: Vec<_> = self.face_coords(f, true).collect();
        for (c, &v) in coords.into_iter().zip(data) {
            let idx = self.idx(c.0, c.1, c.2);
            self.u[idx] = v;
        }
    }

    /// One stencil step over the interior (ghosts must be current).
    pub fn step(&mut self, r: f64) {
        let (nxl, nyl, nzl) = self.dims;
        let mut next = self.u.clone();
        for k in 0..nzl as isize {
            for j in 0..nyl as isize {
                for i in 0..nxl as isize {
                    next[self.idx(i, j, k)] = stencil(
                        self.u[self.idx(i, j, k)],
                        self.u[self.idx(i - 1, j, k)],
                        self.u[self.idx(i + 1, j, k)],
                        self.u[self.idx(i, j - 1, k)],
                        self.u[self.idx(i, j + 1, k)],
                        self.u[self.idx(i, j, k - 1)],
                        self.u[self.idx(i, j, k + 1)],
                        r,
                    );
                }
            }
        }
        self.u = next;
    }

    /// Interior cell count.
    pub fn cells(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Sum of interior cells.
    pub fn local_heat(&self) -> f64 {
        let (nxl, nyl, nzl) = self.dims;
        let mut s = 0.0;
        for k in 0..nzl as isize {
            for j in 0..nyl as isize {
                for i in 0..nxl as isize {
                    s += self.u[self.idx(i, j, k)];
                }
            }
        }
        s
    }

    /// Interior field in `[z][y][x]` order (for validation).
    pub fn interior(&self) -> Vec<f64> {
        let (nxl, nyl, nzl) = self.dims;
        let mut out = Vec::with_capacity(self.cells());
        for k in 0..nzl as isize {
            for j in 0..nyl as isize {
                for i in 0..nxl as isize {
                    out.push(self.u[self.idx(i, j, k)]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_decomposition_round_trips() {
        let cfg = HeatConfig { n: (8, 8, 8), grid: (2, 3, 4), r: 0.1, steps: 0, report_every: 1, halo: Halo::Line };
        for node in 0..cfg.nodes() {
            let c = cfg.coords(node);
            let back = cfg.node_at((c.0 as isize, c.1 as isize, c.2 as isize));
            assert_eq!(back, Some(node));
        }
        assert_eq!(cfg.node_at((-1, 0, 0)), None);
        assert_eq!(cfg.node_at((2, 0, 0)), None);
    }

    #[test]
    fn heat_decays_monotonically() {
        let cfg = HeatConfig { n: (12, 12, 12), grid: (1, 1, 1), r: 0.15, steps: 0, report_every: 1, halo: Halo::Line };
        let mut s = SerialHeat::new(&cfg);
        let mut last = s.total_heat();
        assert!(last > 0.0);
        for _ in 0..10 {
            s.step();
            let h = s.total_heat();
            assert!(h < last, "heat must leak out through the cold boundary");
            last = h;
        }
    }

    #[test]
    fn single_block_matches_serial_exactly() {
        let cfg = HeatConfig { n: (8, 8, 8), grid: (1, 1, 1), r: 0.12, steps: 0, report_every: 1, halo: Halo::Line };
        let mut serial = SerialHeat::new(&cfg);
        let mut block = LocalBlock::new(&cfg, 0);
        for _ in 0..5 {
            serial.step();
            block.step(cfg.r); // ghosts stay zero = Dirichlet
        }
        assert_eq!(block.interior(), serial.u);
    }

    #[test]
    fn face_gather_set_round_trip() {
        let cfg = HeatConfig { n: (4, 6, 8), grid: (1, 1, 1), r: 0.1, steps: 0, report_every: 1, halo: Halo::Line };
        let mut b = LocalBlock::new(&cfg, 0);
        for f in Face::ALL {
            let face = b.gather_face(f);
            assert_eq!(face.len(), b.face_len(f));
            // Setting a ghost then reading it back through idx works.
            let marked: Vec<f64> = (0..face.len()).map(|i| 1000.0 + i as f64).collect();
            b.set_ghost(f, &marked);
            let coords: Vec<_> = b.face_coords(f, true).collect();
            for (n, c) in coords.into_iter().enumerate() {
                assert_eq!(b.u[b.idx(c.0, c.1, c.2)], 1000.0 + n as f64);
            }
        }
    }

    #[test]
    fn opposite_faces_pair_up() {
        for f in Face::ALL {
            assert_eq!(f.opposite().opposite(), f);
            let o = f.offset();
            let oo = f.opposite().offset();
            assert_eq!((o.0 + oo.0, o.1 + oo.1, o.2 + oo.2), (0, 0, 0));
        }
    }

    #[test]
    fn uniform_interior_smooths_toward_boundary() {
        // Max principle: values stay within [0, max(initial)].
        let cfg = HeatConfig { n: (8, 8, 8), grid: (1, 1, 1), r: 1.0 / 6.0, steps: 0, report_every: 1, halo: Halo::Line };
        let mut s = SerialHeat::new(&cfg);
        let max0 = s.u.iter().cloned().fold(0.0, f64::max);
        for _ in 0..20 {
            s.step();
        }
        for &v in &s.u {
            assert!(v >= -1e-12 && v <= max0 + 1e-12);
        }
    }
}
