//! Heat equation on the Data Vortex: halos written straight into the
//! neighbors' DV memory.
//!
//! "For the Data Vortex implementation, as in the previous case, we
//! re-structured the algorithm to take full advantage of the underlying
//! hardware features" (Section VII). The restructuring: every step, each
//! node writes its six boundary planes directly into per-face regions of
//! the neighbors' VIC memory (one DMA batch for all six), arrival is
//! tracked by one group counter per step parity, and the global-heat
//! diagnostic uses the DV-memory collective instead of an MPI allreduce.

use dv_api::world::BlockWrite;
use dv_api::SendMode;
use dv_core::config::ComputeParams;
use dv_kernels::util::{charge, charge_mem_bytes};

use crate::dvcoll;

use super::mpi::HeatRunResult;
use super::{Face, HeatConfig, LocalBlock};

/// Per-parity halo group counters.
const HALO_GC: [u8; 2] = [32, 33];
/// DV-memory base of the ghost-face regions (above the status page).
const FACE_BASE: u32 = 1024;

fn max_face(cfg: &HeatConfig) -> u32 {
    let (nxl, nyl, nzl) = cfg.local();
    (nyl * nzl).max(nxl * nzl).max(nxl * nyl) as u32
}

/// Parity-major layout: each parity's six face regions are contiguous so
/// the receiver drains the whole step's ghosts in **one** DMA read.
fn face_region(cfg: &HeatConfig, f: Face, parity: usize) -> u32 {
    FACE_BASE + (parity as u32 * 6 + f.index() as u32) * max_face(cfg)
}

/// Run the heat solver on the Data Vortex.
pub fn run(cfg: HeatConfig) -> HeatRunResult {
    run_spec(cfg, dv_core::spec::SimSpec::new(cfg.nodes()))
}

/// [`run`] on the cluster described by `spec` — metrics and streaming come
/// from the spec, so streaming benches can watch halo-exchange traffic at
/// virtual-time intervals.
pub fn run_spec(cfg: HeatConfig, spec: dv_core::spec::SimSpec) -> HeatRunResult {
    assert_eq!(spec.nodes, cfg.nodes(), "spec.nodes must match the grid");
    let cluster = dv_api::DvCluster::from_spec(spec);
    let report = cluster.run(move |dv, ctx| {
        let me = dv.node();
        let compute = ComputeParams::default();
        let mut block = LocalBlock::new(&cfg, me);
        let c = block.coords;
        let neighbor = |f: Face| {
            let o = f.offset();
            cfg.node_at((c.0 as isize + o.0, c.1 as isize + o.1, c.2 as isize + o.2))
        };
        // Expected halo words per step = sum of present-neighbor faces.
        let expected: u64 = Face::ALL
            .iter()
            .filter(|&&f| neighbor(f).is_some())
            .map(|&f| block.face_len(f) as u64)
            .sum();
        dv.gc_set_local(ctx, HALO_GC[0], expected);
        dv.gc_set_local(ctx, HALO_GC[1], expected);
        dv.barrier(ctx);
        let mut last_heat = 0.0;

        for step in 0..cfg.steps {
            let parity = step % 2;
            // One DMA batch carrying all six outgoing faces.
            let mut blocks = Vec::new();
            for f in Face::ALL {
                if let Some(n) = neighbor(f) {
                    let face = block.gather_face(f);
                    charge_mem_bytes(ctx, &compute, 8 * face.len() as u64);
                    blocks.push(BlockWrite {
                        dest: n,
                        // It lands in the neighbor's ghost region for the
                        // opposite face.
                        address: face_region(&cfg, f.opposite(), parity),
                        gc: HALO_GC[parity],
                        words: face.iter().map(|v| v.to_bits()).collect(),
                    });
                }
            }
            dv.write_blocks(ctx, blocks, SendMode::Dma { cached_headers: true });

            // Wait for my halos, re-arm the parity, pull ghosts to host.
            let ok = dv.gc_wait_zero(ctx, HALO_GC[parity], None);
            assert!(ok, "halo exchange never completed");
            dv.gc_set_local(ctx, HALO_GC[parity], expected);
            // One DMA drains all six ghost planes (parity-major layout).
            let region = dv.read_local(
                ctx,
                face_region(&cfg, Face::Xm, parity),
                6 * max_face(&cfg) as usize,
            );
            for f in Face::ALL {
                if neighbor(f).is_some() {
                    let off = (f.index() as u32 * max_face(&cfg)) as usize;
                    let data: Vec<f64> = region[off..off + block.face_len(f)]
                        .iter()
                        .map(|&w| f64::from_bits(w))
                        .collect();
                    charge_mem_bytes(ctx, &compute, 8 * data.len() as u64);
                    block.set_ghost(f, &data);
                }
            }

            block.step(cfg.r);
            charge(ctx, block.cells() as u64, compute.stencil_mcups * 1e6);

            if (step + 1) % cfg.report_every == 0 {
                last_heat = dvcoll::allreduce_sum_f64(dv, ctx, block.local_heat());
            }
        }
        dv.fast_barrier(ctx);
        (block.interior(), last_heat)
    });
    let (elapsed, results) = (report.elapsed, report.result);
    let last_heat = results[0].1;
    HeatRunResult { elapsed, fields: results.into_iter().map(|(f, _)| f).collect(), last_heat }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heat::mpi::assemble;
    use crate::heat::{Halo, SerialHeat};

    #[test]
    fn dv_heat_matches_serial_exactly() {
        let cfg = HeatConfig::test_small();
        let r = run(cfg);
        let mut serial = SerialHeat::new(&cfg);
        for _ in 0..cfg.steps {
            serial.step();
        }
        assert_eq!(assemble(&cfg, &r.fields), serial.u);
    }

    #[test]
    fn dv_and_mpi_agree_bitwise() {
        let cfg = HeatConfig { n: (16, 16, 8), grid: (2, 2, 2), r: 0.09, steps: 5, report_every: 2, halo: Halo::Line };
        let dv = run(cfg);
        let mpi = super::super::mpi::run(cfg);
        assert_eq!(assemble(&cfg, &dv.fields), assemble(&cfg, &mpi.fields));
        assert!((dv.last_heat - mpi.last_heat).abs() < 1e-9);
    }

    #[test]
    fn dv_heat_is_faster_than_mpi() {
        // Figure 9's "Heat" bar (~2.46x at 32 nodes); any clear win here.
        let cfg = HeatConfig { n: (16, 16, 16), grid: (2, 2, 2), r: 0.1, steps: 8, report_every: 4, halo: Halo::Line };
        let dv = run(cfg);
        let mpi = super::super::mpi::run(cfg);
        assert!(dv.elapsed < mpi.elapsed, "dv {} mpi {}", dv.elapsed, mpi.elapsed);
    }
}
