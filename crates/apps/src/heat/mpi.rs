//! Heat equation over MPI: six halo messages per node per step.

use dv_core::config::ComputeParams;
use dv_core::time::Time;
use dv_kernels::util::{charge, charge_mem_bytes};
use mini_mpi::{MpiCluster, Payload, ReduceOp};

use super::{Face, Halo, HeatConfig, LocalBlock};

/// Result of a distributed heat run.
#[derive(Debug, Clone)]
pub struct HeatRunResult {
    /// Elapsed virtual time.
    pub elapsed: Time,
    /// Per-node interior fields (node order).
    pub fields: Vec<Vec<f64>>,
    /// Global heat at the last report.
    pub last_heat: f64,
}

/// Run the heat solver over MPI.
pub fn run(cfg: HeatConfig) -> HeatRunResult {
    let spec = dv_core::spec::SimSpec::new(cfg.nodes());
    let report = MpiCluster::from_spec(spec).run(move |comm, ctx| {
        let me = comm.rank();
        let compute = ComputeParams::default();
        let mut block = LocalBlock::new(&cfg, me);
        let c = block.coords;
        let neighbor = |f: Face| {
            let o = f.offset();
            cfg.node_at((c.0 as isize + o.0, c.1 as isize + o.1, c.2 as isize + o.2))
        };
        let mut last_heat = 0.0;
        comm.barrier(ctx);

        for step in 0..cfg.steps {
            let face_tag = |f: Face, line: usize| ((step * 8 + f.index()) * 4096 + line) as u64;
            match cfg.halo {
                // Textbook halo exchange: six sequential shifts. Each
                // shift's wire latency lands on the critical path.
                Halo::Face => {
                    for f in Face::ALL {
                        let mut req = None;
                        if let Some(n) = neighbor(f) {
                            let face = block.gather_face(f);
                            charge_mem_bytes(ctx, &compute, 8 * face.len() as u64);
                            req = Some(comm.isend(ctx, n, face_tag(f, 0), Payload::F64(face)));
                        }
                        // In shift f every rank receives the ghost for the
                        // opposite face from its opposite neighbor.
                        let of = f.opposite();
                        if let Some(n) = neighbor(of) {
                            let data =
                                comm.recv_from(ctx, n, face_tag(f, 0)).payload.into_f64();
                            charge_mem_bytes(ctx, &compute, 8 * data.len() as u64);
                            block.set_ghost(of, &data);
                        }
                        if let Some(r) = req {
                            comm.wait(ctx, r);
                        }
                    }
                }
                // Post everything up front, then drain: the overlapped
                // variants (per face, or the paper's per-line messages).
                Halo::FaceOverlapped | Halo::Line => {
                    let mut reqs = Vec::new();
                    for f in Face::ALL {
                        if let Some(n) = neighbor(f) {
                            let face = block.gather_face(f);
                            charge_mem_bytes(ctx, &compute, 8 * face.len() as u64);
                            if cfg.halo == Halo::FaceOverlapped {
                                reqs.push(comm.isend(ctx, n, face_tag(f, 0), Payload::F64(face)));
                            } else {
                                let ll = block.line_len(f);
                                for (line, chunk) in face.chunks(ll).enumerate() {
                                    reqs.push(comm.isend(
                                        ctx,
                                        n,
                                        face_tag(f, line),
                                        Payload::F64(chunk.to_vec()),
                                    ));
                                }
                            }
                        }
                    }
                    for f in Face::ALL {
                        if let Some(n) = neighbor(f) {
                            let of = f.opposite();
                            let data = if cfg.halo == Halo::FaceOverlapped {
                                comm.recv_from(ctx, n, face_tag(of, 0)).payload.into_f64()
                            } else {
                                let mut buf = Vec::with_capacity(block.face_len(f));
                                for line in 0..block.face_lines(f) {
                                    buf.extend(
                                        comm.recv_from(ctx, n, face_tag(of, line))
                                            .payload
                                            .into_f64(),
                                    );
                                }
                                buf
                            };
                            charge_mem_bytes(ctx, &compute, 8 * data.len() as u64);
                            block.set_ghost(f, &data);
                        }
                    }
                    comm.wait_all(ctx, reqs);
                }
            }

            block.step(cfg.r);
            charge(ctx, block.cells() as u64, compute.stencil_mcups * 1e6);

            if (step + 1) % cfg.report_every == 0 {
                last_heat = comm
                    .allreduce(ctx, ReduceOp::Sum, Payload::F64(vec![block.local_heat()]))
                    .into_f64()[0];
            }
        }
        comm.barrier(ctx);
        (block.interior(), last_heat)
    });
    let (elapsed, results) = (report.elapsed, report.result);
    let last_heat = results[0].1;
    HeatRunResult { elapsed, fields: results.into_iter().map(|(f, _)| f).collect(), last_heat }
}

/// Assemble per-node interiors into the global `[z][y][x]` field.
pub fn assemble(cfg: &HeatConfig, fields: &[Vec<f64>]) -> Vec<f64> {
    let (nx, ny, nz) = cfg.n;
    let (nxl, nyl, nzl) = cfg.local();
    let mut out = vec![0.0; nx * ny * nz];
    for (node, field) in fields.iter().enumerate() {
        let (cx, cy, cz) = cfg.coords(node);
        for k in 0..nzl {
            for j in 0..nyl {
                for i in 0..nxl {
                    let g = ((cz * nzl + k) * ny + (cy * nyl + j)) * nx + cx * nxl + i;
                    out[g] = field[(k * nyl + j) * nxl + i];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heat::SerialHeat;

    #[test]
    fn mpi_heat_matches_serial_exactly() {
        let cfg = HeatConfig::test_small();
        let r = run(cfg);
        let mut serial = SerialHeat::new(&cfg);
        for _ in 0..cfg.steps {
            serial.step();
        }
        assert_eq!(assemble(&cfg, &r.fields), serial.u);
        let serial_heat = serial.total_heat();
        assert!((r.last_heat - serial_heat).abs() < 1e-9 * serial_heat.abs().max(1.0));
    }

    #[test]
    fn anisotropic_grid_works() {
        let cfg = HeatConfig { n: (16, 8, 8), grid: (4, 1, 2), r: 0.08, steps: 3, report_every: 3, halo: Halo::Line };
        let r = run(cfg);
        let mut serial = SerialHeat::new(&cfg);
        for _ in 0..cfg.steps {
            serial.step();
        }
        assert_eq!(assemble(&cfg, &r.fields), serial.u);
    }
}
