//! SNAP over MPI: the reference pipelined KBA sweep.

use dv_core::config::ComputeParams;
use dv_core::time::Time;
use dv_kernels::util::{charge, charge_mem_bytes};
use mini_mpi::{MpiCluster, Payload};

use super::{octant_dirs, LocalSweep, SnapConfig};

/// Result of a distributed SNAP run.
#[derive(Debug, Clone)]
pub struct SnapRunResult {
    /// Elapsed virtual time.
    pub elapsed: Time,
    /// Per-node local flux fields.
    pub fields: Vec<Vec<f64>>,
}

fn face_tag(g: usize, o: usize, chunk_pos: usize, dir: usize) -> u64 {
    (((g * 8 + o) * 4096 + chunk_pos) * 2 + dir) as u64
}

/// Run one full sweep (all groups × octants) over MPI.
pub fn run(cfg: SnapConfig) -> SnapRunResult {
    let spec = dv_core::spec::SimSpec::new(cfg.nodes());
    let report = MpiCluster::from_spec(spec).run(move |comm, ctx| {
        let me = comm.rank();
        let compute = ComputeParams::default();
        let (cy, cz) = cfg.coords(me);
        let (_, nyl, nzl) = cfg.local();
        let mut local = LocalSweep::new(&cfg);
        comm.barrier(ctx);

        for g in 0..cfg.groups {
            for o in 0..8 {
                let (_, ry, rz) = octant_dirs(o);
                // Up/downstream neighbors for this octant's direction.
                let ystep: isize = if ry { -1 } else { 1 };
                let zstep: isize = if rz { -1 } else { 1 };
                let y_up = cfg.node_at(cy as isize - ystep, cz as isize);
                let y_dn = cfg.node_at(cy as isize + ystep, cz as isize);
                let z_up = cfg.node_at(cy as isize, cz as isize - zstep);
                let z_dn = cfg.node_at(cy as isize, cz as isize + zstep);

                let mut xin = vec![0.0; nyl * nzl];
                let mut pending = Vec::new();
                for (pos, range) in LocalSweep::chunk_ranges(&cfg, o).into_iter().enumerate() {
                    let cx = range.1 - range.0;
                    let yface = match y_up {
                        Some(n) => comm.recv_from(ctx, n, face_tag(g, o, pos, 0)).payload.into_f64(),
                        None => vec![0.0; cx * nzl],
                    };
                    let zface = match z_up {
                        Some(n) => comm.recv_from(ctx, n, face_tag(g, o, pos, 1)).payload.into_f64(),
                        None => vec![0.0; cx * nyl],
                    };

                    let (oy, oz) =
                        local.sweep_chunk(&cfg, g, o, range, &mut xin, &yface, &zface);
                    // Per-cell work, weighted by the angle count.
                    charge(
                        ctx,
                        (cx * nyl * nzl * cfg.angles) as u64,
                        compute.stencil_mcups * 1e6,
                    );

                    if let Some(n) = y_dn {
                        charge_mem_bytes(ctx, &compute, 8 * oy.len() as u64);
                        pending.push(comm.isend(ctx, n, face_tag(g, o, pos, 0), Payload::F64(oy)));
                    }
                    if let Some(n) = z_dn {
                        charge_mem_bytes(ctx, &compute, 8 * oz.len() as u64);
                        pending.push(comm.isend(ctx, n, face_tag(g, o, pos, 1), Payload::F64(oz)));
                    }
                }
                comm.wait_all(ctx, pending);
            }
        }
        comm.barrier(ctx);
        local.phi
    });
    SnapRunResult { elapsed: report.elapsed, fields: report.result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snap::{assemble_phi, SerialSnap};

    #[test]
    fn mpi_snap_matches_serial_exactly() {
        let cfg = SnapConfig::test_small();
        let r = run(cfg);
        let mut serial = SerialSnap::new(cfg);
        serial.sweep_all();
        assert_eq!(assemble_phi(&cfg, &r.fields), serial.phi);
    }

    #[test]
    fn asymmetric_grids_work() {
        let cfg =
            SnapConfig { n: (12, 8, 4), grid: (4, 2), groups: 1, angles: 2, chunk: 5, sigma: 0.5 };
        let r = run(cfg);
        let mut serial = SerialSnap::new(cfg);
        serial.sweep_all();
        assert_eq!(assemble_phi(&cfg, &r.fields), serial.phi);
    }
}
