//! SNAP on the Data Vortex — the paper's "best-effort" port.
//!
//! "We performed a best-effort porting by first replacing the MPI
//! primitives with equivalent Data Vortex API functions where possible ...
//! We then added an aggregation scheme to minimize the number of PCIe
//! transfers per message; this improved performance considerably."
//! (Section VII.) The structure of the sweep is untouched; boundary faces
//! travel as DV-memory block writes into a small ring of chunk slots, with
//! group counters for arrival and status-page credits for flow control.
//! The resulting speedup is modest (~1.19× in Figure 9) — the sweep is a
//! regular, already-aggregated pattern that conventional networks also
//! handle well.

use dv_api::world::BlockWrite;
use dv_api::SendMode;
use dv_core::config::ComputeParams;
use dv_kernels::util::{charge, charge_mem_bytes};

use super::mpi::SnapRunResult;
use super::{octant_dirs, LocalSweep, SnapConfig};

/// Ring depth: in-flight chunks per direction.
const SLOTS: usize = 4;
/// Group counters for the y-face ring.
const Y_GC: [u8; SLOTS] = [40, 41, 42, 43];
/// Group counters for the z-face ring.
const Z_GC: [u8; SLOTS] = [44, 45, 46, 47];
/// Status-page progress slots: each grid neighbor publishes its global
/// consumed-sequence count into the slot matching its position relative
/// to me (flow-control credits that survive octant changes).
const PROG_FROM_YM: u32 = 210;
const PROG_FROM_YP: u32 = 211;
const PROG_FROM_ZM: u32 = 212;
const PROG_FROM_ZP: u32 = 213;
/// DV-memory base of the face rings.
const RING_BASE: u32 = 2048;

/// One entry of the flattened sweep schedule.
struct SeqEntry {
    g: usize,
    o: usize,
    range: (usize, usize),
    first_of_octant: bool,
}

/// Run one full sweep on the Data Vortex.
pub fn run(cfg: SnapConfig) -> SnapRunResult {
    let spec = dv_core::spec::SimSpec::new(cfg.nodes());
    let report = dv_api::DvCluster::from_spec(spec).run(move |dv, ctx| {
        let me = dv.node();
        let compute = ComputeParams::default();
        let (cy, cz) = cfg.coords(me);
        let (_, nyl, nzl) = cfg.local();
        let y_words = (cfg.chunk * nzl) as u64;
        let z_words = (cfg.chunk * nyl) as u64;
        // Slot-major layout: a chunk's y-face and z-face are contiguous,
        // so both drain to host in one DMA read.
        let slot_words = (y_words + z_words) as u32;
        let y_slot = |s: usize| RING_BASE + (s % SLOTS) as u32 * slot_words;
        let mut local = LocalSweep::new(&cfg);

        // Flatten the whole sweep into one global sequence so the ring
        // counters and credits pipeline *across* octants and groups, like
        // the MPI sweep does.
        let mut schedule = Vec::new();
        for g in 0..cfg.groups {
            for o in 0..8 {
                for (i, range) in LocalSweep::chunk_ranges(&cfg, o).into_iter().enumerate() {
                    schedule.push(SeqEntry { g, o, range, first_of_octant: i == 0 });
                }
            }
        }
        let up_down = |o: usize| {
            let (_, ry, rz) = octant_dirs(o);
            let ystep: isize = if ry { -1 } else { 1 };
            let zstep: isize = if rz { -1 } else { 1 };
            (
                cfg.node_at(cy as isize - ystep, cz as isize),
                cfg.node_at(cy as isize + ystep, cz as isize),
                cfg.node_at(cy as isize, cz as isize - zstep),
                cfg.node_at(cy as isize, cz as isize + zstep),
            )
        };
        let expected = |seq: usize| -> (u64, u64) {
            match schedule.get(seq) {
                None => (0, 0),
                Some(e) => {
                    let (y_up, _, z_up, _) = up_down(e.o);
                    let cx = (e.range.1 - e.range.0) as u64;
                    (
                        if y_up.is_some() { cx * nzl as u64 } else { 0 },
                        if z_up.is_some() { cx * nyl as u64 } else { 0 },
                    )
                }
            }
        };

        // Arm the first window of slots, then one fence before any data.
        for s in 0..SLOTS {
            let (ey, ez) = expected(s);
            dv.gc_set_local(ctx, Y_GC[s], ey);
            dv.gc_set_local(ctx, Z_GC[s], ez);
        }
        dv.fast_barrier(ctx);

        let mut xin = vec![0.0; nyl * nzl];
        for (seq, entry) in schedule.iter().enumerate() {
            let (y_up, y_dn, z_up, z_dn) = up_down(entry.o);
            if entry.first_of_octant {
                xin.iter_mut().for_each(|v| *v = 0.0);
            }
            let range = entry.range;
            let cx = range.1 - range.0;
            let slot = seq % SLOTS;

            // Wait for upstream faces, re-arm the slot for seq+SLOTS,
            // drain both faces with one DMA read.
            if y_up.is_some() {
                assert!(dv.gc_wait_zero(ctx, Y_GC[slot], None));
            }
            if z_up.is_some() {
                assert!(dv.gc_wait_zero(ctx, Z_GC[slot], None));
            }
            let (ey, ez) = expected(seq + SLOTS);
            dv.gc_set_local(ctx, Y_GC[slot], ey);
            dv.gc_set_local(ctx, Z_GC[slot], ez);
            let (yface, zface): (Vec<f64>, Vec<f64>) = if y_up.is_some() || z_up.is_some() {
                let raw = dv.read_local(ctx, y_slot(seq), slot_words as usize);
                let y = if y_up.is_some() {
                    raw[..cx * nzl].iter().map(|&b| f64::from_bits(b)).collect()
                } else {
                    vec![0.0; cx * nzl]
                };
                let z = if z_up.is_some() {
                    raw[y_words as usize..y_words as usize + cx * nyl]
                        .iter()
                        .map(|&b| f64::from_bits(b))
                        .collect()
                } else {
                    vec![0.0; cx * nyl]
                };
                (y, z)
            } else {
                (vec![0.0; cx * nzl], vec![0.0; cx * nyl])
            };

            // Publish my progress (consumed through seq) to every grid
            // neighbor's matching credit slot — one PIO batch. This is
            // what lets an upstream of a *future* octant know how far I
            // am without any barrier.
            let mut posts = Vec::new();
            for (n, slot_addr) in [
                (cfg.node_at(cy as isize - 1, cz as isize), PROG_FROM_YP),
                (cfg.node_at(cy as isize + 1, cz as isize), PROG_FROM_YM),
                (cfg.node_at(cy as isize, cz as isize - 1), PROG_FROM_ZP),
                (cfg.node_at(cy as isize, cz as isize + 1), PROG_FROM_ZM),
            ] {
                if let Some(n) = n {
                    posts.push(BlockWrite {
                        dest: n,
                        address: slot_addr,
                        gc: dv_core::packet::SCRATCH_GC,
                        words: vec![seq as u64 + 1],
                    });
                }
            }
            dv.write_blocks(ctx, posts, SendMode::DirectWrite { cached_headers: true });

            let (oy, oz) = local.sweep_chunk(&cfg, entry.g, entry.o, range, &mut xin, &yface, &zface);
            charge(
                ctx,
                (cx * nyl * nzl * cfg.angles) as u64,
                compute.stencil_mcups * 1e6,
            );

            // Send downstream faces — never more than SLOTS chunks ahead
            // of the consumer (credit flow control via progress slots).
            let (_, ry, rz) = octant_dirs(entry.o);
            let mut outgoing = Vec::new();
            if let Some(n) = y_dn {
                let prog_slot = if ry { PROG_FROM_YM } else { PROG_FROM_YP };
                while seq + 1 > dv.peek_local(ctx, prog_slot, 1)[0] as usize + SLOTS {
                    ctx.delay(dv_core::time::us(1));
                }
                charge_mem_bytes(ctx, &compute, 8 * oy.len() as u64);
                outgoing.push(BlockWrite {
                    dest: n,
                    address: y_slot(seq),
                    gc: Y_GC[slot],
                    words: oy.iter().map(|v| v.to_bits()).collect(),
                });
            }
            if let Some(n) = z_dn {
                let prog_slot = if rz { PROG_FROM_ZM } else { PROG_FROM_ZP };
                while seq + 1 > dv.peek_local(ctx, prog_slot, 1)[0] as usize + SLOTS {
                    ctx.delay(dv_core::time::us(1));
                }
                charge_mem_bytes(ctx, &compute, 8 * oz.len() as u64);
                outgoing.push(BlockWrite {
                    dest: n,
                    address: y_slot(seq) + y_words as u32,
                    gc: Z_GC[slot],
                    words: oz.iter().map(|v| v.to_bits()).collect(),
                });
            }
            if !outgoing.is_empty() {
                // The aggregation the paper added: both faces in one PCIe
                // batch; small latency-critical faces by direct write.
                let words: u64 = outgoing.iter().map(|b| b.words.len() as u64).sum();
                let mode = if words <= 128 {
                    SendMode::DirectWrite { cached_headers: true }
                } else {
                    SendMode::Dma { cached_headers: true }
                };
                dv.write_blocks(ctx, outgoing, mode);
            }
        }
        dv.fast_barrier(ctx);
        local.phi
    });
    SnapRunResult { elapsed: report.elapsed, fields: report.result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snap::{assemble_phi, SerialSnap};

    #[test]
    fn dv_snap_matches_serial_exactly() {
        let cfg = SnapConfig::test_small();
        let r = run(cfg);
        let mut serial = SerialSnap::new(cfg);
        serial.sweep_all();
        assert_eq!(assemble_phi(&cfg, &r.fields), serial.phi);
    }

    #[test]
    fn dv_and_mpi_snap_agree_bitwise() {
        let cfg =
            SnapConfig { n: (12, 8, 4), grid: (2, 2), groups: 2, angles: 2, chunk: 4, sigma: 0.6 };
        let dv = run(cfg);
        let mpi = super::super::mpi::run(cfg);
        assert_eq!(assemble_phi(&cfg, &dv.fields), assemble_phi(&cfg, &mpi.fields));
    }

    #[test]
    fn dv_speedup_is_modest() {
        // Figure 9: the best-effort port wins, but only a little (1.19x in
        // the paper). Accept anything in [1.0, 2.0) here.
        let cfg =
            SnapConfig { n: (16, 8, 8), grid: (2, 2), groups: 2, angles: 8, chunk: 4, sigma: 0.7 };
        let dv = run(cfg);
        let mpi = super::super::mpi::run(cfg);
        let speedup = mpi.elapsed as f64 / dv.elapsed as f64;
        assert!(speedup > 0.95, "speedup {speedup}");
        assert!(speedup < 2.5, "suspiciously large SNAP speedup {speedup}");
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use dv_core::time::as_us_f64;

    #[test]
    #[ignore = "diagnostic probe"]
    fn snap_breakdown() {
        let cfg =
            SnapConfig { n: (16, 8, 8), grid: (2, 2), groups: 2, angles: 8, chunk: 4, sigma: 0.7 };
        let dv = run(cfg);
        let mpi = super::super::mpi::run(cfg);
        println!("dv {} us   mpi {} us", as_us_f64(dv.elapsed), as_us_f64(mpi.elapsed));
    }
}
