//! SNAP — the SN (Discrete Ordinates) Application Proxy (Figure 9, "SNAP").
//!
//! SNAP "is designed to mimic the computational workload, memory
//! requirements, and communication pattern of PARTISN" (Section VII): a
//! deterministic neutron-transport sweep. We reproduce its structural
//! skeleton: a 3-D spatial mesh decomposed in 2-D over (y,z) with the x
//! axis kept local, swept by a KBA pipelined wavefront for every octant of
//! every energy group. Each x-chunk's outgoing boundary fluxes feed the
//! downstream neighbors — "at each time step, the entire spatial mesh is
//! swept along each direction of the angular domain, generating a large
//! number of messages."
//!
//! The angular flux recurrence is a diamond-difference-flavored update
//! (physics constants are stand-ins — SNAP itself strips PARTISN's
//! physics): for sweep direction with cosines (μ, η, ξ),
//!
//! ```text
//! ψ(i,j,k) = (q_g + μ·ψ_in_x + η·ψ_in_y + ξ·ψ_in_z) / (1 + σ + μ + η + ξ)
//! ```
//!
//! with vacuum (zero) inflow at the domain boundary, and the scalar flux
//! `φ += w·ψ` accumulated over all octants and groups. Both distributed
//! implementations validate *bit-exactly* against [`SerialSnap`].

pub mod dv;
pub mod mpi;

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct SnapConfig {
    /// Mesh cells (x, y, z).
    pub n: (usize, usize, usize),
    /// Node grid over (y, z).
    pub grid: (usize, usize),
    /// Energy groups.
    pub groups: usize,
    /// Angles per octant (weights the per-cell compute; the recurrence is
    /// evaluated once per octant with representative cosines, as SNAP's
    /// workload mimicry allows).
    pub angles: usize,
    /// x cells per pipeline chunk (KBA pipelining depth).
    pub chunk: usize,
    /// Total macroscopic cross section σ.
    pub sigma: f64,
}

impl SnapConfig {
    /// Small test problem on 4 nodes (2×2).
    pub fn test_small() -> Self {
        Self { n: (8, 8, 8), grid: (2, 2), groups: 2, angles: 4, chunk: 4, sigma: 0.7 }
    }

    /// Node count (py·pz).
    pub fn nodes(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    /// Local block dims (x stays whole).
    pub fn local(&self) -> (usize, usize, usize) {
        assert_eq!(self.n.1 % self.grid.0, 0, "ny must divide by py");
        assert_eq!(self.n.2 % self.grid.1, 0, "nz must divide by pz");
        (self.n.0, self.n.1 / self.grid.0, self.n.2 / self.grid.1)
    }

    /// Number of x chunks.
    pub fn chunks(&self) -> usize {
        self.n.0.div_ceil(self.chunk)
    }

    /// Node id → (cy, cz).
    pub fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.grid.0, node / self.grid.0)
    }

    /// (cy, cz) → node id, `None` off-grid.
    pub fn node_at(&self, cy: isize, cz: isize) -> Option<usize> {
        if cy < 0 || cz < 0 || cy as usize >= self.grid.0 || cz as usize >= self.grid.1 {
            None
        } else {
            Some(cz as usize * self.grid.0 + cy as usize)
        }
    }

    /// Group source term.
    pub fn source(&self, g: usize) -> f64 {
        1.0 + 0.1 * g as f64
    }

    /// Quadrature weight (uniform toy quadrature).
    pub fn weight(&self) -> f64 {
        1.0 / (8.0 * self.groups as f64)
    }
}

/// Direction cosines used by every octant (signs fold into sweep order).
pub const MU: f64 = 0.35;
/// See [`MU`].
pub const ETA: f64 = 0.48;
/// See [`MU`].
pub const XI: f64 = 0.81;

/// Iteration order along one axis for an octant bit (0 = increasing).
pub fn axis_order(len: usize, reversed: bool) -> Vec<usize> {
    if reversed {
        (0..len).rev().collect()
    } else {
        (0..len).collect()
    }
}

/// Octant `o` (0..8) → (x reversed?, y reversed?, z reversed?).
pub fn octant_dirs(o: usize) -> (bool, bool, bool) {
    (o & 1 != 0, o & 2 != 0, o & 4 != 0)
}

/// The per-cell recurrence both solvers share.
#[inline]
pub fn sweep_cell(q: f64, psi_x: f64, psi_y: f64, psi_z: f64, sigma: f64) -> f64 {
    (q + MU * psi_x + ETA * psi_y + XI * psi_z) / (1.0 + sigma + MU + ETA + XI)
}

/// Serial reference sweep; produces the scalar flux field `[z][y][x]`.
pub struct SerialSnap {
    cfg: SnapConfig,
    /// Scalar flux.
    pub phi: Vec<f64>,
}

impl SerialSnap {
    /// Zeroed flux.
    pub fn new(cfg: SnapConfig) -> Self {
        let (nx, ny, nz) = cfg.n;
        Self { cfg, phi: vec![0.0; nx * ny * nz] }
    }

    /// Sweep all groups and octants once (one "source iteration").
    pub fn sweep_all(&mut self) {
        let (nx, ny, nz) = self.cfg.n;
        let w = self.cfg.weight();
        for g in 0..self.cfg.groups {
            let q = self.cfg.source(g);
            for o in 0..8 {
                let (rx, ry, rz) = octant_dirs(o);
                let mut zin = vec![0.0; ny * nx];
                for k in axis_order(nz, rz) {
                    let mut yin = vec![0.0; nx];
                    for j in axis_order(ny, ry) {
                        let mut xin = 0.0;
                        for i in axis_order(nx, rx) {
                            let psi =
                                sweep_cell(q, xin, yin[i], zin[j * nx + i], self.cfg.sigma);
                            self.phi[(k * ny + j) * nx + i] += w * psi;
                            xin = psi;
                            yin[i] = psi;
                            zin[j * nx + i] = psi;
                        }
                    }
                }
            }
        }
    }
}

/// Per-node sweep state for one (group, octant) pass over the local
/// block: the running x-inflow per (j,k) column plus the local scalar
/// flux. Faces are indexed `[k·cx + ci]` (y faces) and `[j·cx + ci]`
/// (z faces) with `ci = i − chunk_start` in memory order.
pub struct LocalSweep {
    /// Local dims (nx, nyl, nzl).
    pub dims: (usize, usize, usize),
    /// Scalar flux, `[k][j][i]` over the local block.
    pub phi: Vec<f64>,
}

impl LocalSweep {
    /// Fresh local state.
    pub fn new(cfg: &SnapConfig) -> Self {
        let (nx, nyl, nzl) = cfg.local();
        Self { dims: (nx, nyl, nzl), phi: vec![0.0; nx * nyl * nzl] }
    }

    /// The x-chunk ranges in sweep order for octant `o`.
    pub fn chunk_ranges(cfg: &SnapConfig, o: usize) -> Vec<(usize, usize)> {
        let (rx, _, _) = octant_dirs(o);
        let nx = cfg.n.0;
        let mut ranges: Vec<(usize, usize)> =
            (0..cfg.chunks()).map(|c| (c * cfg.chunk, ((c + 1) * cfg.chunk).min(nx))).collect();
        if rx {
            ranges.reverse();
        }
        ranges
    }

    /// Sweep one x-chunk for `(g, o)`. `xin` carries the per-(j,k)
    /// x-inflow across chunks (size `nyl·nzl`, zeroed at each (g,o)
    /// start); `yface`/`zface` are the upstream inflows for this chunk
    /// (zeros at the domain boundary). Returns the outgoing
    /// `(yface, zface)` for the downstream neighbors.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_chunk(
        &mut self,
        cfg: &SnapConfig,
        g: usize,
        o: usize,
        range: (usize, usize),
        xin: &mut [f64],
        yface: &[f64],
        zface: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        let (nx, nyl, nzl) = self.dims;
        let (rx, ry, rz) = octant_dirs(o);
        let (i0, i1) = range;
        let cx = i1 - i0;
        debug_assert_eq!(yface.len(), cx * nzl);
        debug_assert_eq!(zface.len(), cx * nyl);
        let q = cfg.source(g);
        let w = cfg.weight();
        let sigma = cfg.sigma;

        let korder = axis_order(nzl, rz);
        let jorder = axis_order(nyl, ry);
        let iorder: Vec<usize> = {
            let mut v: Vec<usize> = (i0..i1).collect();
            if rx {
                v.reverse();
            }
            v
        };

        let mut out_yface = vec![0.0; cx * nzl];
        let mut out_zface = vec![0.0; cx * nyl];
        // zrow[j·cx + ci]: psi of the previous k-slice.
        let mut zrow = zface.to_vec();
        for (kpos, &k) in korder.iter().enumerate() {
            // yrow[ci]: psi of the previous j within this k-slice.
            let mut yrow = vec![0.0; cx];
            for ci in 0..cx {
                yrow[ci] = yface[k * cx + ci];
            }
            for (jpos, &j) in jorder.iter().enumerate() {
                let mut x_in = xin[j * nzl + k];
                for &i in &iorder {
                    let ci = i - i0;
                    let psi = sweep_cell(q, x_in, yrow[ci], zrow[j * cx + ci], sigma);
                    self.phi[(k * nyl + j) * nx + i] += w * psi;
                    x_in = psi;
                    yrow[ci] = psi;
                    zrow[j * cx + ci] = psi;
                }
                xin[j * nzl + k] = x_in;
                if jpos == nyl - 1 {
                    // Last local j in sweep order: outgoing y boundary.
                    out_yface[k * cx..k * cx + cx].copy_from_slice(&yrow);
                }
            }
            if kpos == nzl - 1 {
                out_zface.copy_from_slice(&zrow);
            }
        }
        (out_yface, out_zface)
    }
}

/// Assemble per-node local flux blocks into the global `[z][y][x]` field.
pub fn assemble_phi(cfg: &SnapConfig, fields: &[Vec<f64>]) -> Vec<f64> {
    let (nx, ny, nz) = cfg.n;
    let (_, nyl, nzl) = cfg.local();
    let mut out = vec![0.0; nx * ny * nz];
    for (node, field) in fields.iter().enumerate() {
        let (cy, cz) = cfg.coords(node);
        for k in 0..nzl {
            for j in 0..nyl {
                for i in 0..nx {
                    out[((cz * nzl + k) * ny + (cy * nyl + j)) * nx + i] =
                        field[(k * nyl + j) * nx + i];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_chunked_sweep_matches_serial() {
        let cfg = SnapConfig { n: (8, 8, 8), grid: (1, 1), groups: 2, angles: 4, chunk: 3, sigma: 0.7 };
        let mut serial = SerialSnap::new(cfg);
        serial.sweep_all();
        let (_, nyl, nzl) = cfg.local();
        let mut local = LocalSweep::new(&cfg);
        for g in 0..cfg.groups {
            for o in 0..8 {
                let mut xin = vec![0.0; nyl * nzl];
                for range in LocalSweep::chunk_ranges(&cfg, o) {
                    let cx = range.1 - range.0;
                    let yface = vec![0.0; cx * nzl];
                    let zface = vec![0.0; cx * nyl];
                    local.sweep_chunk(&cfg, g, o, range, &mut xin, &yface, &zface);
                }
            }
        }
        assert_eq!(local.phi, serial.phi);
    }

    #[test]
    fn sweep_fills_every_cell_positively() {
        let mut s = SerialSnap::new(SnapConfig::test_small());
        s.sweep_all();
        assert!(s.phi.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn flux_grows_along_each_sweep_direction_on_average() {
        // Deeper cells accumulate more in-scatter: the interior should be
        // hotter than the boundary after summing all octants.
        let cfg = SnapConfig { n: (16, 8, 8), grid: (1, 1), ..SnapConfig::test_small() };
        let mut s = SerialSnap::new(cfg);
        s.sweep_all();
        let (nx, ny, _) = cfg.n;
        let center = s.phi[(4 * ny + 4) * nx + 8];
        let corner = s.phi[0];
        assert!(center > corner, "center {center} corner {corner}");
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = SnapConfig::test_small();
        let mut a = SerialSnap::new(cfg);
        let mut b = SerialSnap::new(cfg);
        a.sweep_all();
        b.sweep_all();
        assert_eq!(a.phi, b.phi);
    }

    #[test]
    fn octant_dirs_cover_all_sign_combinations() {
        let mut seen = std::collections::BTreeSet::new();
        for o in 0..8 {
            seen.insert(octant_dirs(o));
        }
        assert_eq!(seen.len(), 8);
    }
}
