//! Data Vortex collectives — re-exported from [`dv_api::coll`] (they moved
//! into the API crate so `dv-kernels` can build on them as well).

pub use dv_api::coll::*;
