//! The pluggable distributed-transpose engine — re-exported from
//! [`dv_kernels::transpose`] (it moved into the kernels crate so the 2-D
//! FFT kernel can share it with the vorticity application).

pub use dv_kernels::transpose::*;
