//! Figure 9: application speedup of the Data Vortex implementations over
//! the MPI-over-InfiniBand implementations.

use crate::heat::{self, Halo, HeatConfig};
use crate::snap::{self, SnapConfig};
use crate::vorticity::{dist as vort, VortConfig};

/// One bar of Figure 9.
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Application name.
    pub name: &'static str,
    /// MPI elapsed virtual time (ps).
    pub mpi: u64,
    /// Data Vortex elapsed virtual time (ps).
    pub dv: u64,
}

impl Speedup {
    /// DV speedup over MPI (the y-axis of Figure 9).
    pub fn factor(&self) -> f64 {
        self.mpi as f64 / self.dv as f64
    }
}

/// Problem sizes for the Figure 9 runs at a given node count.
pub struct Fig9Sizes {
    /// SNAP configuration.
    pub snap: SnapConfig,
    /// Vorticity configuration.
    pub vorticity: VortConfig,
    /// Heat configuration.
    pub heat: HeatConfig,
}

impl Fig9Sizes {
    /// The benchmark sizes for a 32-node run (scaled-down analogue of the
    /// paper's cluster-filling problems).
    pub fn for_nodes_32() -> Self {
        Self {
            snap: SnapConfig {
                n: (32, 32, 32),
                grid: (8, 4),
                groups: 3,
                angles: 12,
                chunk: 4,
                sigma: 0.7,
            },
            vorticity: VortConfig { m: 256, dt: 5e-4, steps: 3 },
            heat: HeatConfig {
                n: (32, 32, 32),
                grid: (4, 4, 2),
                r: 0.1,
                steps: 24,
                report_every: 4, halo: Halo::Face },
        }
    }

    /// Tiny sizes for tests.
    pub fn for_tests() -> Self {
        Self {
            snap: SnapConfig { n: (8, 8, 8), grid: (2, 2), groups: 1, angles: 4, chunk: 4, sigma: 0.7 },
            vorticity: VortConfig { m: 32, dt: 1e-3, steps: 2 },
            heat: HeatConfig { n: (8, 8, 8), grid: (2, 2, 1), r: 0.1, steps: 4, report_every: 2, halo: Halo::Face },
        }
    }
}

/// Run all three applications on both networks and report the speedups.
pub fn speedups(sizes: &Fig9Sizes) -> Vec<Speedup> {
    let snap_mpi = snap::mpi::run(sizes.snap);
    let snap_dv = snap::dv::run(sizes.snap);
    let vort_nodes = sizes.snap.nodes(); // same cluster for all three
    let vort_mpi = vort::run_mpi(sizes.vorticity, vort_nodes);
    let vort_dv = vort::run_dv(sizes.vorticity, vort_nodes);
    let heat_mpi = heat::mpi::run(sizes.heat);
    let heat_dv = heat::dv::run(sizes.heat);
    vec![
        Speedup { name: "SNAP", mpi: snap_mpi.elapsed, dv: snap_dv.elapsed },
        Speedup { name: "Vorticity", mpi: vort_mpi.elapsed, dv: vort_dv.elapsed },
        Speedup { name: "Heat", mpi: heat_mpi.elapsed, dv: heat_dv.elapsed },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_apps_run_and_dv_never_loses_badly() {
        let s = speedups(&Fig9Sizes::for_tests());
        assert_eq!(s.len(), 3);
        for sp in &s {
            assert!(sp.factor() > 0.8, "{}: {}", sp.name, sp.factor());
        }
    }
}
