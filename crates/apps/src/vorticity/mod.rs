//! Ideal incompressible flow: 2-D Euler in vorticity–streamfunction form.
//!
//! Section VII: "The equations describing this flow are derived from the
//! Navier Stokes equations ... in the high Reynolds number regime",
//! reduced to Euler's equation. We solve the standard pseudo-spectral
//! formulation on a periodic `[0,2π)²` box:
//!
//! ```text
//! ω_t + u·∇ω = 0,      u = (∂ψ/∂y, −∂ψ/∂x),      ∇²ψ = −ω
//! ```
//!
//! Each forward-Euler step evaluates the nonlinear term pseudo-spectrally
//! with exactly **five 2-D FFTs** (u, v, ω_x, ω_y inverse transforms and
//! one forward transform of u·∇ω), matching the paper: "The majority of
//! the communication cost is from computing five two-dimensional FFTs at
//! each time step."
//!
//! The distributed solver ([`dist`]) is generic over the transpose engine,
//! so the MPI and Data Vortex versions execute *bit-identical arithmetic*
//! and are validated against [`SerialVorticity`] for exact equality.

pub mod dist;

use dv_kernels::fft::{fft_in_place, ifft_in_place, Complex};

/// Problem description.
#[derive(Debug, Clone, Copy)]
pub struct VortConfig {
    /// Grid points per side (power of two).
    pub m: usize,
    /// Time step.
    pub dt: f64,
    /// Steps to run.
    pub steps: usize,
}

impl VortConfig {
    /// Small test problem.
    pub fn test_small() -> Self {
        Self { m: 32, dt: 1e-3, steps: 4 }
    }
}

/// Integer wavenumber of index `j` on an `m`-point periodic grid.
#[inline]
pub fn wavenumber(j: usize, m: usize) -> f64 {
    if j < m / 2 {
        j as f64
    } else {
        j as f64 - m as f64
    }
}

/// The Kelvin–Helmholtz-flavored initial vorticity used by the benchmark:
/// a perturbed double shear layer.
pub fn initial_vorticity(x: f64, y: f64) -> f64 {
    let delta = 0.05;
    let shear = if y <= std::f64::consts::PI {
        ((y - std::f64::consts::FRAC_PI_2) / delta).cosh().powi(-2) / delta
    } else {
        -((y - 3.0 * std::f64::consts::FRAC_PI_2) / delta).cosh().powi(-2) / delta
    };
    shear * 0.5 + 0.1 * (x).cos()
}

/// Serial 2-D FFT via row FFTs and explicit transposes — the *same*
/// operation sequence as the distributed solver, so results are
/// bit-identical.
pub fn fft2d(data: &mut Vec<Complex>, m: usize, inverse: bool) {
    let run_rows = |d: &mut [Complex]| {
        for row in d.chunks_mut(m) {
            if inverse {
                ifft_in_place(row);
            } else {
                fft_in_place(row);
            }
        }
    };
    run_rows(data);
    *data = transpose_sq(data, m);
    run_rows(data);
    *data = transpose_sq(data, m);
}

/// Square transpose of a row-major m×m matrix.
pub fn transpose_sq(data: &[Complex], m: usize) -> Vec<Complex> {
    let mut out = vec![Complex::zero(); m * m];
    for r in 0..m {
        for c in 0..m {
            out[c * m + r] = data[r * m + c];
        }
    }
    out
}

/// One spectral step's pointwise math, shared verbatim by the serial and
/// distributed solvers. Operates on *rows* `[row0, row0+rows)` of the
/// spectral field. Returns `(u_hat, v_hat, wx_hat, wy_hat)`.
pub fn velocity_and_gradient_hat(
    omega_hat: &[Complex],
    m: usize,
    row0: usize,
) -> (Vec<Complex>, Vec<Complex>, Vec<Complex>, Vec<Complex>) {
    let rows = omega_hat.len() / m;
    let mut u = vec![Complex::zero(); omega_hat.len()];
    let mut v = vec![Complex::zero(); omega_hat.len()];
    let mut wx = vec![Complex::zero(); omega_hat.len()];
    let mut wy = vec![Complex::zero(); omega_hat.len()];
    for lr in 0..rows {
        let ky = wavenumber(row0 + lr, m);
        for c in 0..m {
            let kx = wavenumber(c, m);
            let k2 = kx * kx + ky * ky;
            let w = omega_hat[lr * m + c];
            let psi = if k2 == 0.0 { Complex::zero() } else { Complex::new(w.re / k2, w.im / k2) };
            // u = ∂ψ/∂y → i·ky·ψ ; v = −∂ψ/∂x → −i·kx·ψ.
            u[lr * m + c] = Complex::new(-ky * psi.im, ky * psi.re);
            v[lr * m + c] = Complex::new(kx * psi.im, -kx * psi.re);
            wx[lr * m + c] = Complex::new(-kx * w.im, kx * w.re);
            wy[lr * m + c] = Complex::new(-ky * w.im, ky * w.re);
        }
    }
    (u, v, wx, wy)
}

/// Serial pseudo-spectral solver (the validation reference).
pub struct SerialVorticity {
    /// Grid size.
    pub m: usize,
    /// Spectral vorticity, row-major m×m.
    pub omega_hat: Vec<Complex>,
}

impl SerialVorticity {
    /// Initialize from a physical-space vorticity field.
    pub fn new(cfg: &VortConfig, f: impl Fn(f64, f64) -> f64) -> Self {
        let m = cfg.m;
        let h = 2.0 * std::f64::consts::PI / m as f64;
        let mut omega: Vec<Complex> = (0..m * m)
            .map(|i| Complex::new(f((i % m) as f64 * h, (i / m) as f64 * h), 0.0))
            .collect();
        fft2d(&mut omega, m, false);
        Self { m, omega_hat: omega }
    }

    /// One forward-Euler step (five 2-D FFTs).
    pub fn step(&mut self, dt: f64) {
        let m = self.m;
        let (mut u, mut v, mut wx, mut wy) = velocity_and_gradient_hat(&self.omega_hat, m, 0);
        fft2d(&mut u, m, true);
        fft2d(&mut v, m, true);
        fft2d(&mut wx, m, true);
        fft2d(&mut wy, m, true);
        let mut nonlin: Vec<Complex> = (0..m * m)
            .map(|i| {
                Complex::new(
                    u[i].re * wx[i].re + v[i].re * wy[i].re,
                    0.0,
                )
            })
            .collect();
        fft2d(&mut nonlin, m, false);
        for (w, n) in self.omega_hat.iter_mut().zip(&nonlin) {
            w.re -= dt * n.re;
            w.im -= dt * n.im;
        }
    }

    /// Enstrophy ½∑ω² in physical space (a conserved quantity of 2-D
    /// Euler, approximately conserved by the discretization).
    pub fn enstrophy(&self) -> f64 {
        let m = self.m;
        let mut w = self.omega_hat.clone();
        fft2d(&mut w, m, true);
        0.5 * w.iter().map(|c| c.re * c.re).sum::<f64>()
    }

    /// Mean vorticity (exactly conserved: the k=0 mode).
    pub fn mean_vorticity(&self) -> f64 {
        self.omega_hat[0].re / (self.m * self.m) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft2d_inverse_round_trips() {
        let m = 16;
        let orig: Vec<Complex> =
            (0..m * m).map(|i| Complex::new((i as f64).sin(), (i as f64).cos())).collect();
        let mut x = orig.clone();
        fft2d(&mut x, m, false);
        fft2d(&mut x, m, true);
        let err = dv_kernels::fft::max_error(&x, &orig);
        assert!(err < 1e-10, "{err}");
    }

    #[test]
    fn transpose_is_involutive() {
        let m = 8;
        let x: Vec<Complex> = (0..m * m).map(|i| Complex::new(i as f64, 0.0)).collect();
        assert_eq!(transpose_sq(&transpose_sq(&x, m), m), x);
    }

    #[test]
    fn mean_vorticity_is_conserved() {
        let cfg = VortConfig::test_small();
        let mut s = SerialVorticity::new(&cfg, initial_vorticity);
        let before = s.mean_vorticity();
        for _ in 0..cfg.steps {
            s.step(cfg.dt);
        }
        assert!((s.mean_vorticity() - before).abs() < 1e-10);
    }

    #[test]
    fn enstrophy_approximately_conserved_short_term() {
        let cfg = VortConfig { m: 32, dt: 5e-4, steps: 8 };
        let mut s = SerialVorticity::new(&cfg, initial_vorticity);
        let before = s.enstrophy();
        for _ in 0..cfg.steps {
            s.step(cfg.dt);
        }
        let after = s.enstrophy();
        let drift = (after - before).abs() / before;
        assert!(drift < 0.05, "enstrophy drifted {drift}");
    }

    #[test]
    fn still_fluid_stays_still() {
        let cfg = VortConfig { m: 16, dt: 1e-2, steps: 5 };
        let mut s = SerialVorticity::new(&cfg, |_, _| 0.0);
        for _ in 0..cfg.steps {
            s.step(cfg.dt);
        }
        assert!(s.enstrophy() < 1e-20);
    }

    #[test]
    fn velocity_is_divergence_free() {
        // ∇·u = i kx û + i ky v̂ must vanish identically.
        let cfg = VortConfig::test_small();
        let s = SerialVorticity::new(&cfg, initial_vorticity);
        let (u, v, _, _) = velocity_and_gradient_hat(&s.omega_hat, s.m, 0);
        for r in 0..s.m {
            let ky = wavenumber(r, s.m);
            for c in 0..s.m {
                let kx = wavenumber(c, s.m);
                let div_re = -kx * u[r * s.m + c].im - ky * v[r * s.m + c].im;
                let div_im = kx * u[r * s.m + c].re + ky * v[r * s.m + c].re;
                assert!(div_re.abs() < 1e-9 && div_im.abs() < 1e-9);
            }
        }
    }
}
