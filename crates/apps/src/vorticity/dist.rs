//! Distributed vorticity solver, generic over the transpose engine.

use dv_core::config::ComputeParams;
use dv_core::time::{as_secs_f64, Time};
use dv_kernels::fft::twod::fft2d_dist;
use dv_kernels::fft::Complex;
use dv_kernels::util::{charge_flops, charge_mem_bytes};
use dv_sim::SimCtx;

use crate::transpose::{DvTranspose, MpiTranspose, TransposeEngine};

use super::{initial_vorticity, velocity_and_gradient_hat, VortConfig};

/// Result of a distributed vorticity run.
#[derive(Debug, Clone)]
pub struct VortRunResult {
    /// Elapsed virtual time.
    pub elapsed: Time,
    /// Final local spectral vorticity per node (row blocks, rank order).
    pub omega_hat: Vec<Vec<Complex>>,
    /// 2-D FFTs performed.
    pub fft2d_count: u64,
}

impl VortRunResult {
    /// Steps per second of virtual time for `steps` steps.
    pub fn steps_per_sec(&self, steps: usize) -> f64 {
        steps as f64 / as_secs_f64(self.elapsed)
    }
}

/// The solver body: runs on every node; `local` spectral rows in, final
/// spectral rows out. Arithmetic is identical to `SerialVorticity::step`.
pub fn solve<E: TransposeEngine>(
    eng: &mut E,
    ctx: &SimCtx,
    cfg: &VortConfig,
    mut omega_hat: Vec<Complex>,
) -> (Vec<Complex>, u64) {
    let m = cfg.m;
    let p = eng.nodes();
    let rows = m / p;
    let row0 = eng.node() * rows;
    let compute = ComputeParams::default();
    let mut ffts = 0u64;
    for _ in 0..cfg.steps {
        let (mut u, mut v, mut wx, mut wy) = velocity_and_gradient_hat(&omega_hat, m, row0);
        charge_flops(ctx, &compute, 20 * omega_hat.len() as u64);
        fft2d_dist(eng, ctx, &compute, &mut u, m, true);
        fft2d_dist(eng, ctx, &compute, &mut v, m, true);
        fft2d_dist(eng, ctx, &compute, &mut wx, m, true);
        fft2d_dist(eng, ctx, &compute, &mut wy, m, true);
        let mut nonlin: Vec<Complex> = (0..rows * m)
            .map(|i| Complex::new(u[i].re * wx[i].re + v[i].re * wy[i].re, 0.0))
            .collect();
        charge_flops(ctx, &compute, 3 * nonlin.len() as u64);
        charge_mem_bytes(ctx, &compute, (5 * 16 * nonlin.len()) as u64);
        fft2d_dist(eng, ctx, &compute, &mut nonlin, m, false);
        ffts += 5;
        for (w, n) in omega_hat.iter_mut().zip(&nonlin) {
            w.re -= cfg.dt * n.re;
            w.im -= cfg.dt * n.im;
        }
        charge_flops(ctx, &compute, 4 * omega_hat.len() as u64);
        // Diagnostic the real code reports each step: total enstrophy.
        let local_enstrophy: f64 = omega_hat.iter().map(|c| c.norm_sq()).sum();
        let _ = eng.allreduce_sum(ctx, local_enstrophy);
    }
    (omega_hat, ffts)
}

/// The initial local spectral rows for `node` (computed off the clock —
/// problem setup, like the paper's untimed initialization).
pub fn initial_rows(cfg: &VortConfig, nodes: usize, node: usize) -> Vec<Complex> {
    // Compute the full spectral field serially and slice this node's rows
    // (identical to what a parallel FFT of the initial data produces).
    let m = cfg.m;
    let h = 2.0 * std::f64::consts::PI / m as f64;
    let mut omega: Vec<Complex> = (0..m * m)
        .map(|i| Complex::new(initial_vorticity((i % m) as f64 * h, (i / m) as f64 * h), 0.0))
        .collect();
    super::fft2d(&mut omega, m, false);
    let rows = m / nodes;
    omega[node * rows * m..(node + 1) * rows * m].to_vec()
}

/// Run over MPI.
pub fn run_mpi(cfg: VortConfig, nodes: usize) -> VortRunResult {
    let report = mini_mpi::MpiCluster::from_spec(dv_core::spec::SimSpec::new(nodes)).run(move |comm, ctx| {
        let local = initial_rows(&cfg, comm.size(), comm.rank());
        comm.barrier(ctx);
        let mut eng = MpiTranspose::new(comm);
        solve(&mut eng, ctx, &cfg, local)
    });
    let (elapsed, results) = (report.elapsed, report.result);
    let fft2d_count = results.iter().map(|(_, f)| f).sum();
    VortRunResult { elapsed, omega_hat: results.into_iter().map(|(o, _)| o).collect(), fft2d_count }
}

/// Run on the Data Vortex.
pub fn run_dv(cfg: VortConfig, nodes: usize) -> VortRunResult {
    let report = dv_api::DvCluster::from_spec(dv_core::spec::SimSpec::new(nodes)).run(move |dv, ctx| {
        let local = initial_rows(&cfg, dv.nodes(), dv.node());
        let mut eng = DvTranspose::new(dv, ctx, 4096, local.len());
        solve(&mut eng, ctx, &cfg, local)
    });
    let (elapsed, results) = (report.elapsed, report.result);
    let fft2d_count = results.iter().map(|(_, f)| f).sum();
    VortRunResult { elapsed, omega_hat: results.into_iter().map(|(o, _)| o).collect(), fft2d_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vorticity::SerialVorticity;

    fn reference(cfg: &VortConfig) -> Vec<Complex> {
        let mut s = SerialVorticity::new(cfg, initial_vorticity);
        for _ in 0..cfg.steps {
            s.step(cfg.dt);
        }
        s.omega_hat
    }

    fn assert_matches_serial(result: &VortRunResult, cfg: &VortConfig) {
        let expect = reference(cfg);
        let m = cfg.m;
        let p = result.omega_hat.len();
        let rows = m / p;
        for (node, local) in result.omega_hat.iter().enumerate() {
            let slice = &expect[node * rows * m..(node + 1) * rows * m];
            let err = dv_kernels::fft::max_error(local, slice);
            assert!(err < 1e-9, "node {node}: err {err}");
        }
    }

    #[test]
    fn mpi_solver_matches_serial() {
        let cfg = VortConfig::test_small();
        let r = run_mpi(cfg, 4);
        assert_matches_serial(&r, &cfg);
        assert_eq!(r.fft2d_count, 4 * 5 * cfg.steps as u64);
    }

    #[test]
    fn dv_solver_matches_serial() {
        let cfg = VortConfig::test_small();
        let r = run_dv(cfg, 4);
        assert_matches_serial(&r, &cfg);
    }

    #[test]
    fn dv_is_faster_than_mpi() {
        // The Figure 9 "Vorticity" bar (~3.4x at 32 nodes; any clear win
        // at this small test size).
        let cfg = VortConfig { m: 64, dt: 1e-3, steps: 2 };
        let dv = run_dv(cfg, 8);
        let mpi = run_mpi(cfg, 8);
        assert!(
            dv.elapsed < mpi.elapsed,
            "dv {} mpi {}",
            dv.elapsed,
            mpi.elapsed
        );
    }
}
