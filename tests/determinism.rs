//! Reproducibility: every simulated benchmark is bit-deterministic —
//! identical inputs give identical virtual times *and* identical data.
//! This is the property that makes the simulation a usable instrument.

use datavortex::core::config::MachineConfig;
use datavortex::kernels::graph;
use datavortex::kernels::gups::{self, GupsConfig};
use datavortex::kernels::{barrier, fft};

#[test]
fn gups_is_fully_deterministic_on_both_backends() {
    let cfg = GupsConfig { table_per_node: 1 << 10, updates_per_node: 1 << 11, bucket: 512, stream_offset: 0 };
    let a = gups::dv::run(cfg, 8);
    let b = gups::dv::run(cfg, 8);
    assert_eq!(a.elapsed, b.elapsed, "virtual time must reproduce exactly");
    assert_eq!(a.checksum, b.checksum);
    let c = gups::mpi::run(cfg, 8);
    let d = gups::mpi::run(cfg, 8);
    assert_eq!(c.elapsed, d.elapsed);
    assert_eq!(c.checksum, d.checksum);
}

#[test]
fn fft_times_reproduce_exactly() {
    let a = fft::dv::run(1 << 12, 4, false);
    let b = fft::dv::run(1 << 12, 4, false);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.flops, b.flops);
    let c = fft::mpi::run(1 << 12, 4, false);
    let d = fft::mpi::run(1 << 12, 4, false);
    assert_eq!(c.elapsed, d.elapsed);
}

#[test]
fn bfs_times_and_trees_reproduce_exactly() {
    let gcfg = graph::GraphConfig { scale: 10, edgefactor: 8, seed: 12 };
    let edges = graph::kronecker_edges(&gcfg);
    let csr = graph::Csr::build(gcfg.vertices(), &edges);
    let locals = graph::partition_csr(&csr, graph::VertexPart { nodes: 4 });
    let root = graph::pick_roots(&csr, 1, 3)[0];
    let a = graph::dv::run(&locals, gcfg.vertices(), root, MachineConfig::paper_cluster());
    let b = graph::dv::run(&locals, gcfg.vertices(), root, MachineConfig::paper_cluster());
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.parents, b.parents);
    assert_eq!(a.edges_scanned, b.edges_scanned);
}

#[test]
fn barrier_measurements_reproduce_exactly() {
    for kind in [
        barrier::BarrierKind::DvIntrinsic,
        barrier::BarrierKind::DvFast,
        barrier::BarrierKind::Mpi,
    ] {
        let a = barrier::barrier_latency(kind, 16, 25);
        let b = barrier::barrier_latency(kind, 16, 25);
        assert_eq!(a, b, "{kind:?}");
    }
}

#[test]
fn different_seeds_change_graph_results() {
    let g1 = graph::kronecker_edges(&graph::GraphConfig { scale: 10, edgefactor: 8, seed: 1 });
    let g2 = graph::kronecker_edges(&graph::GraphConfig { scale: 10, edgefactor: 8, seed: 2 });
    assert_ne!(g1, g2);
}
