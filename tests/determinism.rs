//! Reproducibility: every simulated benchmark is bit-deterministic —
//! identical inputs give identical virtual times *and* identical data.
//! This is the property that makes the simulation a usable instrument.

use std::sync::Arc;

use datavortex::api::{DvCluster, SendMode};
use datavortex::core::config::MachineConfig;
use datavortex::core::metrics::MetricsRegistry;
use datavortex::core::packet::SCRATCH_GC;
use datavortex::core::spec::SimSpec;
use datavortex::core::sync::lock_order_conflicts;
use datavortex::core::time::Time;
use datavortex::core::trace::Tracer;
use datavortex::kernels::graph;
use datavortex::kernels::gups::{self, GupsConfig};
use datavortex::kernels::{barrier, fft};
use datavortex::mpi::{MpiCluster, Payload, ReduceOp};

#[test]
fn gups_is_fully_deterministic_on_both_backends() {
    let cfg = GupsConfig { table_per_node: 1 << 10, updates_per_node: 1 << 11, bucket: 512, stream_offset: 0 };
    let a = gups::dv::run(cfg, 8);
    let b = gups::dv::run(cfg, 8);
    assert_eq!(a.elapsed, b.elapsed, "virtual time must reproduce exactly");
    assert_eq!(a.checksum, b.checksum);
    let c = gups::mpi::run(cfg, 8);
    let d = gups::mpi::run(cfg, 8);
    assert_eq!(c.elapsed, d.elapsed);
    assert_eq!(c.checksum, d.checksum);
}

#[test]
fn fft_times_reproduce_exactly() {
    let a = fft::dv::run(1 << 12, 4, false);
    let b = fft::dv::run(1 << 12, 4, false);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.flops, b.flops);
    let c = fft::mpi::run(1 << 12, 4, false);
    let d = fft::mpi::run(1 << 12, 4, false);
    assert_eq!(c.elapsed, d.elapsed);
}

#[test]
fn bfs_times_and_trees_reproduce_exactly() {
    let gcfg = graph::GraphConfig { scale: 10, edgefactor: 8, seed: 12 };
    let edges = graph::kronecker_edges(&gcfg);
    let csr = graph::Csr::build(gcfg.vertices(), &edges);
    let locals = graph::partition_csr(&csr, graph::VertexPart { nodes: 4 });
    let root = graph::pick_roots(&csr, 1, 3)[0];
    let a = graph::dv::run(&locals, gcfg.vertices(), root, MachineConfig::paper_cluster());
    let b = graph::dv::run(&locals, gcfg.vertices(), root, MachineConfig::paper_cluster());
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.parents, b.parents);
    assert_eq!(a.edges_scanned, b.edges_scanned);
}

#[test]
fn barrier_measurements_reproduce_exactly() {
    for kind in [
        barrier::BarrierKind::DvIntrinsic,
        barrier::BarrierKind::DvFast,
        barrier::BarrierKind::Mpi,
    ] {
        let a = barrier::barrier_latency(kind, 16, 25);
        let b = barrier::barrier_latency(kind, 16, 25);
        assert_eq!(a, b, "{kind:?}");
    }
}

/// A Data Vortex workload with plenty of interleaving opportunity:
/// barriers, FIFO ring traffic, and DMA sends across 8 nodes.
fn dv_workload(nodes: usize) -> (Time, u64) {
    let report = DvCluster::from_spec(SimSpec::new(nodes)).run(move |dv, ctx| {
        for round in 0..3u64 {
            dv.fast_barrier(ctx);
            dv.send_fifo(
                ctx,
                (dv.node() + 1) % nodes,
                &[dv.node() as u64 * 100 + round],
                SCRATCH_GC,
                SendMode::Dma { cached_headers: true },
            );
            let _ = dv.fifo_recv(ctx);
        }
        ctx.now()
    });
    assert_eq!(report.result.len(), nodes);
    (report.elapsed, report.trace_hash)
}

/// An MPI workload mixing point-to-point and collectives.
fn mpi_workload(nodes: usize) -> (Time, u64) {
    let report = MpiCluster::from_spec(SimSpec::new(nodes)).run(|comm, ctx| {
        let mine = Payload::U64(vec![comm.rank() as u64]);
        let sum = comm.allreduce(ctx, ReduceOp::Sum, mine).into_u64()[0];
        comm.barrier(ctx);
        sum
    });
    let expect: u64 = (0..nodes as u64).sum();
    assert!(report.result.iter().all(|&r| r == expect));
    (report.elapsed, report.trace_hash)
}

#[test]
fn dv_trace_hash_reproduces_exactly() {
    // The OrderAudit hash digests every scheduler commit (who resumed,
    // when, which call ran): two runs agreeing on it means the entire
    // event interleaving was identical, not just the final answers.
    let (e1, h1) = dv_workload(8);
    let (e2, h2) = dv_workload(8);
    assert_eq!(e1, e2, "virtual time must reproduce");
    assert_eq!(h1, h2, "event-trace hash must reproduce");
}

#[test]
fn mpi_trace_hash_reproduces_exactly() {
    let (e1, h1) = mpi_workload(8);
    let (e2, h2) = mpi_workload(8);
    assert_eq!(e1, e2);
    assert_eq!(h1, h2);
}

#[test]
fn trace_hash_is_stable_under_host_parallelism() {
    // Several host threads each run the same simulation concurrently,
    // fighting over cores and skewing every thread-scheduling decision
    // the host makes. The virtual trace must not care.
    let baseline = dv_workload(8);
    let handles: Vec<_> =
        (0..4).map(|_| std::thread::spawn(|| dv_workload(8))).collect();
    for h in handles {
        let got = h.join().expect("workload thread panicked");
        assert_eq!(got, baseline, "trace diverged under concurrent hosts");
    }
    let mpi_baseline = mpi_workload(6);
    let handles: Vec<_> =
        (0..4).map(|_| std::thread::spawn(|| mpi_workload(6))).collect();
    for h in handles {
        assert_eq!(h.join().expect("workload thread panicked"), mpi_baseline);
    }
}

/// A fully instrumented GUPS run; returns the canonical metrics JSON and
/// its FNV hash.
fn instrumented_gups(nodes: usize) -> (String, u64) {
    let cfg =
        GupsConfig { table_per_node: 1 << 9, updates_per_node: 1 << 10, bucket: 512, stream_offset: 0 };
    let metrics = Arc::new(MetricsRegistry::enabled());
    let spec = SimSpec::new(nodes)
        .metrics(Arc::clone(&metrics))
        .tracer(Arc::new(Tracer::enabled()));
    let _ = gups::dv::run_spec(cfg, spec);
    let snap = metrics.snapshot();
    (snap.render(), snap.fnv_hash())
}

#[test]
fn metrics_snapshot_reproduces_byte_identically() {
    // The metrics counterpart of the trace-hash tests: two identical runs
    // must agree on every counter, gauge, and histogram bucket — down to
    // the canonical JSON bytes and the FNV hash over them.
    let (json1, h1) = instrumented_gups(4);
    let (json2, h2) = instrumented_gups(4);
    assert_eq!(json1, json2, "metrics JSON must be byte-identical across runs");
    assert_eq!(h1, h2);
    // Sensitivity: a different cluster size must hash differently.
    let (_, h8) = instrumented_gups(8);
    assert_ne!(h1, h8);
}

#[test]
fn metrics_snapshot_is_stable_under_host_parallelism() {
    // Instrumentation must not open a nondeterminism channel: concurrent
    // host threads racing over cores cannot change what gets counted.
    let baseline = instrumented_gups(4);
    let handles: Vec<_> =
        (0..4).map(|_| std::thread::spawn(|| instrumented_gups(4))).collect();
    for h in handles {
        let got = h.join().expect("workload thread panicked");
        assert_eq!(got, baseline, "metrics diverged under concurrent hosts");
    }
}

#[test]
fn instrumented_runs_count_what_the_run_did() {
    let cfg =
        GupsConfig { table_per_node: 1 << 9, updates_per_node: 1 << 10, bucket: 512, stream_offset: 0 };
    let metrics = Arc::new(MetricsRegistry::enabled());
    let spec = SimSpec::new(4)
        .metrics(Arc::clone(&metrics))
        .tracer(Arc::new(Tracer::enabled()));
    let r = gups::dv::run_spec(cfg, spec);
    let snap = metrics.snapshot();
    // Every simulated process was registered with the scheduler.
    assert_eq!(snap.counter("sim.sched.processes", &[]), Some(4));
    // All remote updates crossed the network as packets.
    assert!(snap.counter_total("api.net.packets") > 0);
    // The group-counter engine was exercised on every node.
    assert!(snap.counter_total("vic.gc.decrements") > 0);
    // Virtual-state totals cover the whole run on some node.
    assert!(snap.counter_total("trace.state_ps") >= r.elapsed);
}

/// Run an instrumented GUPS with a virtual-time series attached and a
/// sink that concatenates every sample line — the body of a
/// `dv-events-v1` stream (the header and end lines are static given the
/// sample lines, so body identity ⟺ stream identity).
fn streamed_gups(nodes: usize, faults: Option<datavortex::core::fault::FaultPlan>) -> String {
    use datavortex::core::time::us;
    let cfg =
        GupsConfig { table_per_node: 1 << 9, updates_per_node: 1 << 10, bucket: 512, stream_offset: 0 };
    let metrics = Arc::new(MetricsRegistry::enabled());
    metrics.attach_series(us(1), 4096);
    let lines = Arc::new(std::sync::Mutex::new(String::new()));
    let sink = Arc::clone(&lines);
    metrics.set_series_sink(move |s| {
        let mut out = sink.lock().unwrap();
        out.push_str(&s.to_json().render());
        out.push('\n');
    });
    let spec = SimSpec::new(nodes)
        .faults_opt(faults)
        .metrics(Arc::clone(&metrics))
        .tracer(Arc::new(Tracer::enabled()));
    let r = gups::dv::run_spec(cfg, spec);
    metrics.finish_series(r.elapsed);
    let out = lines.lock().unwrap().clone();
    out
}

#[test]
fn telemetry_streams_reproduce_byte_identically() {
    // The `--stream` story rests on this: sampling is keyed purely to
    // virtual time, so two identical runs emit identical streams.
    let a = streamed_gups(4, None);
    let b = streamed_gups(4, None);
    assert!(!a.is_empty(), "the run must produce interval samples");
    assert_eq!(a, b, "same-seed telemetry streams must be byte-identical");
}

#[test]
fn chaos_telemetry_streams_reproduce_byte_identically() {
    // Seeded fault injection must not open a nondeterminism channel into
    // the stream either — chaos runs replay byte-for-byte too.
    let plan = datavortex::core::fault::FaultPlan::parse("seed=7,fifodrop=0.02")
        .expect("valid fault spec");
    let a = streamed_gups(4, Some(plan.clone()));
    let b = streamed_gups(4, Some(plan));
    assert!(!a.is_empty());
    assert_eq!(a, b, "seeded chaos streams must be byte-identical");
    // Sensitivity: the faults must actually leave a mark in the stream.
    assert_ne!(a, streamed_gups(4, None), "fault injection left no trace in the stream");
}

#[test]
fn sampling_path_never_reads_the_wall_clock() {
    // Stream determinism requires that the entire sampling path — the
    // registry's tick/sample machinery, the scheduler that drives it, and
    // the stream emitter — is pure virtual time. Enforce it at the source
    // level: none of these files may mention a host-clock API at all.
    for path in
        ["crates/core/src/metrics.rs", "crates/sim/src/sim.rs", "crates/bench/src/stream.rs"]
    {
        let full = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
        let src = std::fs::read_to_string(&full)
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        for needle in ["Instant::now", "SystemTime", "wall_clock("] {
            assert!(
                !src.contains(needle),
                "{path} touches the wall clock ({needle}) — sampling must be virtual-time only"
            );
        }
    }
}

#[test]
fn trace_hash_distinguishes_different_workloads() {
    // Sensitivity check: if the hash never changed, the equality tests
    // above would be vacuous.
    let (_, h4) = dv_workload(4);
    let (_, h8) = dv_workload(8);
    assert_ne!(h4, h8, "different cluster sizes must hash differently");
}

#[test]
fn lock_order_conflicts_stay_in_the_audited_set() {
    // Drive both stacks, then read the debug-mode lock-order audit.
    // One inversion is known and benign: a VIC lock is held while
    // registering a waker (which takes the kernel lock), and kernel-held
    // Call closures also take VIC locks. It cannot deadlock because the
    // scheduler runs exactly one simulated process at a time, so the two
    // orders are never in flight concurrently.
    let _ = dv_workload(4);
    let _ = mpi_workload(4);
    let benign =
        [("api.vic".to_string(), "sim.kernel".to_string())];
    for conflict in lock_order_conflicts() {
        assert!(
            benign.contains(&conflict),
            "unexpected lock-order inversion: {conflict:?} — audit it or fix the ordering"
        );
    }
}

#[test]
fn different_seeds_change_graph_results() {
    let g1 = graph::kronecker_edges(&graph::GraphConfig { scale: 10, edgefactor: 8, seed: 1 });
    let g2 = graph::kronecker_edges(&graph::GraphConfig { scale: 10, edgefactor: 8, seed: 2 });
    assert_ne!(g1, g2);
}
