//! Shard-count invariance: the sharded engine's defining contract.
//!
//! The engine commits events in global `(time, seq)` order regardless of
//! how the pending queues are sharded, so the `OrderAudit` trace hash,
//! every result, every metrics counter, and every dv-events-v1 telemetry
//! byte must be identical at shards ∈ {1, 2, 4} — and identical to the
//! frozen pre-sharding reference engine. Clean runs and seeded chaos runs
//! both. If any of these tests fail, the sharded engine is not a
//! scheduler optimization anymore; it is a different simulator.

use std::sync::Arc;

use datavortex::api::{DvCluster, SendMode};
use datavortex::core::fault::FaultPlan;
use datavortex::core::metrics::MetricsRegistry;
use datavortex::core::packet::SCRATCH_GC;
use datavortex::core::spec::{Engine, SimSpec};
use datavortex::core::time::{us, Time};
use datavortex::core::trace::Tracer;
use datavortex::kernels::gups::{self, GupsConfig};
use datavortex::mpi::{MpiCluster, Payload, ReduceOp};

const SHARD_COUNTS: &[usize] = &[1, 2, 4];

/// A Data Vortex workload with plenty of interleaving opportunity:
/// barriers, FIFO ring traffic, and DMA sends (the `tests/determinism.rs`
/// workload, parameterized by engine and shard count).
fn dv_workload(spec: SimSpec) -> (Time, u64, Vec<Time>) {
    let nodes = spec.nodes;
    let report = DvCluster::from_spec(spec).run(move |dv, ctx| {
        for round in 0..3u64 {
            dv.fast_barrier(ctx);
            dv.send_fifo(
                ctx,
                (dv.node() + 1) % nodes,
                &[dv.node() as u64 * 100 + round],
                SCRATCH_GC,
                SendMode::Dma { cached_headers: true },
            );
            let _ = dv.fifo_recv(ctx);
        }
        ctx.now()
    });
    (report.elapsed, report.trace_hash, report.result)
}

/// An MPI workload mixing point-to-point and collectives.
fn mpi_workload(spec: SimSpec) -> (Time, u64, Vec<u64>) {
    let report = MpiCluster::from_spec(spec).run(|comm, ctx| {
        let mine = Payload::U64(vec![comm.rank() as u64]);
        let sum = comm.allreduce(ctx, ReduceOp::Sum, mine).into_u64()[0];
        comm.barrier(ctx);
        sum
    });
    (report.elapsed, report.trace_hash, report.result)
}

/// A two-node chaos workload under link drop/dup faults whose trace hash
/// and per-node results are compared across engines.
fn faulted_workload(spec: SimSpec) -> (Time, u64, Vec<u64>) {
    let plan = FaultPlan::parse("seed=5,drop=0.1,dup=0.1").expect("valid fault spec");
    let report = DvCluster::from_spec(spec.faults(plan)).run(move |dv, ctx| {
        if dv.node() == 0 {
            let words: Vec<u64> = (0..512).collect();
            dv.send_fifo(ctx, 1, &words, SCRATCH_GC, SendMode::Dma { cached_headers: true });
            ctx.delay(us(500));
            0
        } else {
            ctx.delay(us(1000));
            dv.fifo_drain(ctx, usize::MAX).len() as u64
        }
    });
    (report.elapsed, report.trace_hash, report.result)
}

#[test]
fn dv_trace_hash_is_shard_count_invariant() {
    let baseline = dv_workload(SimSpec::new(8).shards(1));
    for &shards in &SHARD_COUNTS[1..] {
        let got = dv_workload(SimSpec::new(8).shards(shards));
        assert_eq!(got, baseline, "shards={shards} diverged from shards=1");
    }
}

#[test]
fn dv_sharded_matches_the_frozen_reference_engine() {
    let reference = dv_workload(SimSpec::new(8).engine(Engine::Reference));
    for &shards in SHARD_COUNTS {
        let got = dv_workload(SimSpec::new(8).shards(shards));
        assert_eq!(
            got, reference,
            "sharded engine (shards={shards}) diverged from the reference engine"
        );
    }
}

#[test]
fn mpi_trace_hash_is_shard_count_invariant() {
    let reference = mpi_workload(SimSpec::new(6).engine(Engine::Reference));
    for &shards in SHARD_COUNTS {
        let got = mpi_workload(SimSpec::new(6).shards(shards));
        assert_eq!(got, reference, "shards={shards}");
    }
}

#[test]
fn chaos_trace_hash_is_shard_count_invariant() {
    // Fault injection must not open a shard-count channel: the plan keys
    // off packet sequence numbers, which the total-order commit fixes.
    let reference = faulted_workload(SimSpec::new(2).engine(Engine::Reference));
    assert!(reference.2[1] > 0, "the faulted run must still deliver data");
    for &shards in SHARD_COUNTS {
        let got = faulted_workload(SimSpec::new(2).shards(shards));
        assert_eq!(got, reference, "shards={shards}");
    }
}

/// A fully instrumented GUPS chaos run; returns (checksum, metrics hash).
fn gups_chaos(spec: SimSpec) -> (u64, u64) {
    let cfg =
        GupsConfig { table_per_node: 1 << 9, updates_per_node: 1 << 10, bucket: 512, stream_offset: 0 };
    let plan = FaultPlan::parse("seed=7,fifodrop=0.02").expect("valid fault spec");
    let metrics = Arc::new(MetricsRegistry::enabled());
    let r = gups::dv::run_spec(
        cfg,
        spec.faults(plan).metrics(Arc::clone(&metrics)).tracer(Arc::new(Tracer::enabled())),
    );
    (r.checksum, metrics.snapshot().fnv_hash())
}

#[test]
fn gups_chaos_metrics_are_shard_count_invariant() {
    // End to end: recovery-layer retransmissions, VIC fault counters, and
    // the final table are all byte-identical across engines and shards.
    let reference = gups_chaos(SimSpec::new(4).engine(Engine::Reference));
    for &shards in SHARD_COUNTS {
        let got = gups_chaos(SimSpec::new(4).shards(shards));
        assert_eq!(got, reference, "shards={shards}");
    }
}

/// Run an instrumented GUPS with a virtual-time series attached and a
/// sink that concatenates every sample line — the body of a dv-events-v1
/// stream (header and end lines are static given the sample lines, so
/// body identity ⟺ stream identity).
fn streamed_gups(spec: SimSpec, faults: Option<FaultPlan>) -> String {
    let cfg =
        GupsConfig { table_per_node: 1 << 9, updates_per_node: 1 << 10, bucket: 512, stream_offset: 0 };
    let metrics = Arc::new(MetricsRegistry::enabled());
    metrics.attach_series(us(1), 4096);
    let lines = Arc::new(std::sync::Mutex::new(String::new()));
    let sink = Arc::clone(&lines);
    metrics.set_series_sink(move |s| {
        let mut out = sink.lock().unwrap();
        out.push_str(&s.to_json().render());
        out.push('\n');
    });
    let spec = spec
        .faults_opt(faults)
        .metrics(Arc::clone(&metrics))
        .tracer(Arc::new(Tracer::enabled()));
    let r = gups::dv::run_spec(cfg, spec);
    metrics.finish_series(r.elapsed);
    let out = lines.lock().unwrap().clone();
    out
}

#[test]
fn telemetry_streams_are_shard_count_invariant() {
    let reference = streamed_gups(SimSpec::new(4).engine(Engine::Reference), None);
    assert!(!reference.is_empty(), "the run must produce interval samples");
    for &shards in SHARD_COUNTS {
        let got = streamed_gups(SimSpec::new(4).shards(shards), None);
        assert_eq!(got, reference, "dv-events stream diverged at shards={shards}");
    }
}

#[test]
fn chaos_telemetry_streams_are_shard_count_invariant() {
    let plan = FaultPlan::parse("seed=7,fifodrop=0.02").expect("valid fault spec");
    let reference =
        streamed_gups(SimSpec::new(4).engine(Engine::Reference), Some(plan.clone()));
    assert!(!reference.is_empty());
    for &shards in SHARD_COUNTS {
        let got = streamed_gups(SimSpec::new(4).shards(shards), Some(plan.clone()));
        assert_eq!(got, reference, "chaos dv-events stream diverged at shards={shards}");
    }
    // Sensitivity: the faults must actually leave a mark in the stream.
    assert_ne!(
        reference,
        streamed_gups(SimSpec::new(4).engine(Engine::Reference), None),
        "fault injection left no trace in the stream"
    );
}

#[test]
fn shard_counts_beyond_the_node_count_still_agree() {
    // Shards is a scheduler knob, not a topology: more shards than nodes
    // (and a prime count) must change nothing.
    let baseline = dv_workload(SimSpec::new(4).shards(1));
    for shards in [3usize, 7, 16] {
        assert_eq!(dv_workload(SimSpec::new(4).shards(shards)), baseline, "shards={shards}");
    }
}
