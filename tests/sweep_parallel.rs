//! Serial vs parallel sweep determinism, end to end: `sweep_parallel`
//! must be indistinguishable from `sweep` — identical `SweepPoint`s in
//! input order and byte-identical metrics snapshots (the exact property
//! CI checks by `cmp`-ing `switch_study --serial` against the default
//! parallel run's JSON artifact).

use std::sync::Arc;

use datavortex::core::fault::FaultPlan;
use datavortex::core::metrics::MetricsRegistry;
use datavortex::switch::traffic::{Arrival, LoadSweep, Pattern};
use datavortex::switch::{AnyTopology, TopoKind, Topology};

fn base_sweep(topo: Topology) -> LoadSweep {
    let mut s = LoadSweep::new(topo);
    s.warmup = 100;
    s.measure = 600;
    s
}

/// Render a full run (points + registry bytes) under one configuration.
fn render(sweep: &LoadSweep, loads: &[f64], parallel: bool) -> String {
    let metrics = Arc::new(MetricsRegistry::enabled());
    let mut s = sweep.clone();
    s.metrics = Some(Arc::clone(&metrics));
    let points = if parallel { s.sweep_parallel(loads) } else { s.sweep(loads) };
    let mut out = String::new();
    for p in points {
        out.push_str(&format!(
            "{:.6} {:.9} {:.9} {:.9} {:.9} {} {}\n",
            p.offered,
            p.accepted,
            p.latency_mean,
            p.total_latency_mean,
            p.deflections_mean,
            p.delivered,
            p.total_latency_p99_log2,
        ));
    }
    out.push_str(&metrics.snapshot().render());
    out
}

#[test]
fn parallel_sweep_bytes_match_serial_across_patterns() {
    let loads = [0.1, 0.3, 0.5, 0.7, 0.9];
    for pattern in Pattern::ALL {
        let mut s = base_sweep(Topology::new(8, 4));
        s.pattern = pattern;
        assert_eq!(
            render(&s, &loads, false),
            render(&s, &loads, true),
            "{pattern:?}: serial and parallel sweeps must be byte-identical"
        );
    }
}

#[test]
fn parallel_sweep_bytes_match_serial_with_bursty_faulted_traffic() {
    let loads = [0.2, 0.4, 0.6, 0.8];
    let mut s = base_sweep(Topology::new(16, 4));
    s.arrival = Arrival::Bursty { mean_burst: 8.0 };
    s.faults = Some(FaultPlan { seed: 7, link_drop: 0.05, ..Default::default() });
    assert_eq!(render(&s, &loads, false), render(&s, &loads, true));
}

#[test]
fn parallel_sweep_bytes_match_serial_on_rival_topologies() {
    // The `--topo` sweeps route through the rebuilt `RoutedNetSim` (LUT +
    // arena + bitmap worklists); its parallel shards must still publish
    // in input order with byte-identical points and metrics.
    let loads = [0.1, 0.3, 0.5];
    for kind in [TopoKind::FatTree, TopoKind::MinPath] {
        let mut s = LoadSweep::for_net(AnyTopology::for_ports(kind, 64));
        s.warmup = 100;
        s.measure = 400;
        assert_eq!(
            render(&s, &loads, false),
            render(&s, &loads, true),
            "{kind:?}: serial and parallel rival sweeps must be byte-identical"
        );
    }
}

#[test]
fn parallel_sweep_replays_byte_identically() {
    // Two parallel runs on a machine with whatever core count: same bytes.
    let loads = [0.25, 0.55, 0.85];
    let s = base_sweep(Topology::new(8, 4));
    assert_eq!(render(&s, &loads, true), render(&s, &loads, true));
}
