//! The disabled metrics path must be free: no locks (beyond one relaxed
//! atomic load) and, checked here, no heap allocation. A counting global
//! allocator wraps the system one; the disabled-registry hot loop must
//! leave the counter untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use datavortex::core::metrics::MetricsRegistry;
use datavortex::core::stats::Log2Histogram;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator plus one relaxed
// counter bump; all GlobalAlloc contract obligations are System's own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: layout is forwarded unchanged to the System allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout came from the matching System.alloc above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// One test function: the allocation counter is process-global, so a
// second test running on a sibling thread would bump it mid-measurement.
#[test]
fn disabled_registry_never_allocates() {
    let m = MetricsRegistry::disabled();
    let mut hist = Log2Histogram::new(16);
    hist.push(7);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        m.incr("bench.counter", 1);
        m.incr_labeled("bench.labeled", &[("node", i.into()), ("path", "eager".into())], 1);
        m.gauge("bench.gauge", i as f64);
        m.gauge_max("bench.gauge_max", &[("node", i.into())], i as f64);
        m.observe("bench.hist", i);
        m.observe_labeled("bench.hist_labeled", &[("op", "sum".into())], i);
        m.observe_histogram("bench.hist_bulk", &[], &hist);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after, before, "disabled metrics path allocated {} times", after - before);
    assert!(m.snapshot().is_empty());

    // Sanity: the same calls on an enabled registry must produce data
    // (and are allowed to allocate).
    let m = MetricsRegistry::enabled();
    m.incr("bench.counter", 2);
    m.observe("bench.hist", 9);
    let snap = m.snapshot();
    assert_eq!(snap.counter("bench.counter", &[]), Some(2));
    assert!(!snap.is_empty());
}
