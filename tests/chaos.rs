//! Chaos suite: deterministic fault injection end to end.
//!
//! Every test here runs with a seeded [`FaultPlan`] (or a deliberately
//! starved FIFO) and asserts *exact* outcomes: kernels complete with the
//! correct answer under injected loss, fault counters agree with an
//! offline replay of the plan, and two runs of the same seed are
//! bit-identical. This is the executable form of the repo's determinism
//! contract under failure — see DESIGN.md § "Fault injection & recovery".

use std::sync::Arc;

use datavortex::api::{DvCluster, SendMode};
use datavortex::core::config::MachineConfig;
use datavortex::core::fault::FaultPlan;
use datavortex::core::metrics::MetricsRegistry;
use datavortex::core::packet::SCRATCH_GC;
use datavortex::core::spec::SimSpec;
use datavortex::core::time::us;
use datavortex::kernels::graph::{
    kronecker_edges, partition_csr, pick_roots, validate_bfs, Csr, GraphConfig, VertexPart,
};
use datavortex::kernels::gups::{dv as gups_dv, mpi as gups_mpi, serial_reference, GupsConfig};

fn plan(spec: &str) -> FaultPlan {
    FaultPlan::parse(spec).expect("valid fault spec")
}

fn chaos_machine(spec: &str) -> MachineConfig {
    let mut m = MachineConfig::paper_cluster();
    m.faults = Some(plan(spec));
    m
}

/// Small-but-real GUPS sizing shared by the chaos runs.
const GUPS: GupsConfig =
    GupsConfig { table_per_node: 1 << 10, updates_per_node: 1 << 12, bucket: 1024, stream_offset: 0 };

fn gups_chaos_run(nodes: usize, spec: &str) -> (u64, Arc<MetricsRegistry>) {
    let metrics = Arc::new(MetricsRegistry::enabled());
    let r = gups_dv::run_spec(
        GUPS,
        SimSpec::new(nodes).machine(chaos_machine(spec)).metrics(Arc::clone(&metrics)),
    );
    assert_eq!(
        r.total_updates,
        (GUPS.updates_per_node * nodes) as u64,
        "every update must be applied exactly once"
    );
    (r.checksum, metrics)
}

#[test]
fn gups_is_exact_under_injected_fifo_drops() {
    // 2% forced drops plus a periodic storm: well past the ISSUE's 1% bar.
    let (checksum, metrics) = gups_chaos_run(4, "seed=7,fifodrop=0.02,fifostorm=509:3");
    let (_, expect) = serial_reference(&GUPS, 4);
    assert_eq!(checksum, expect, "recovery must reconstruct the exact table");

    let snap = metrics.snapshot();
    assert!(snap.counter_total("vic.fifo.forced_drops") > 0, "the plan must actually fire");
    assert!(snap.counter_total("api.fifo.retx_words") > 0, "drops must trigger retransmission");
}

#[test]
fn forced_drop_counters_agree_with_an_offline_replay() {
    let spec = "seed=21,fifodrop=0.03";
    let nodes = 4;
    let (_, metrics) = gups_chaos_run(nodes, spec);
    let snap = metrics.snapshot();
    let p = plan(spec);
    for node in 0..nodes {
        let label = [("node", node.to_string())];
        let labels: Vec<(&str, &str)> = label.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let pushes = snap.counter("vic.fifo.pushes", &labels).unwrap_or(0);
        let drops = snap.counter("vic.fifo.drops", &labels).unwrap_or(0);
        let forced = snap.counter("vic.fifo.forced_drops", &labels).unwrap_or(0);
        // The VIC consumes one decision per FIFO arrival (accepted or
        // not), so replaying the plan over that many sequence numbers
        // must land on exactly the forced-drop count it reported.
        assert_eq!(
            p.expected_fifo_forced_drops(node as u64, pushes + drops),
            forced,
            "node {node}: plan replay disagrees with the VIC counter"
        );
    }
}

#[test]
fn same_seed_same_plan_is_bit_identical() {
    let spec = "seed=42,fifodrop=0.02,stall=0.01:800";
    let (c1, m1) = gups_chaos_run(4, spec);
    let (c2, m2) = gups_chaos_run(4, spec);
    assert_eq!(c1, c2, "checksums must match across runs");
    let (s1, s2) = (m1.snapshot(), m2.snapshot());
    assert_eq!(s1.fnv_hash(), s2.fnv_hash(), "metrics snapshots must be bit-identical");
}

#[test]
fn different_seeds_diverge() {
    // The seed must actually steer the fault pattern (otherwise the
    // determinism test above would pass vacuously).
    let (_, m1) = gups_chaos_run(4, "seed=1,fifodrop=0.05");
    let (_, m2) = gups_chaos_run(4, "seed=2,fifodrop=0.05");
    assert_ne!(
        m1.snapshot().counter_total("vic.fifo.forced_drops"),
        m2.snapshot().counter_total("vic.fifo.forced_drops"),
        "different seeds should force different drop patterns"
    );
}

#[test]
fn gups_recovers_from_genuine_overflow_without_a_plan() {
    // No fault plan at all — just a FIFO far too small for the offered
    // load, so rejections are real admission-control overflows.
    let mut machine = MachineConfig::paper_cluster();
    machine.dv.fifo_capacity = 128;
    let metrics = Arc::new(MetricsRegistry::enabled());
    let r =
        gups_dv::run_spec(GUPS, SimSpec::new(4).machine(machine).metrics(Arc::clone(&metrics)));
    let (_, expect) = serial_reference(&GUPS, 4);
    assert_eq!(r.checksum, expect);
    let snap = metrics.snapshot();
    assert!(snap.counter_total("vic.fifo.drops") > 0, "the starved FIFO must overflow");
    assert_eq!(snap.counter_total("vic.fifo.forced_drops"), 0, "no plan, no forced drops");
    assert!(snap.counter_total("api.fifo.retx_words") > 0);
}

#[test]
fn dv_gups_matches_mpi_under_chaos() {
    // The cross-backend check fig6 --faults relies on, in miniature: the
    // MPI backend never sees the plan, so agreement proves recovery.
    let (dv_checksum, _) = gups_chaos_run(4, "seed=3,fifodrop=0.015");
    let m = gups_mpi::run(GUPS, 4);
    assert_eq!(dv_checksum, m.checksum);
}

#[test]
fn bfs_trees_validate_under_injected_fifo_drops() {
    let gcfg = GraphConfig { scale: 10, edgefactor: 8, seed: 0x6500 };
    let edges = kronecker_edges(&gcfg);
    let csr = Csr::build(gcfg.vertices(), &edges);
    let locals = partition_csr(&csr, VertexPart { nodes: 4 });
    for root in pick_roots(&csr, 2, 99) {
        let machine = chaos_machine("seed=13,fifodrop=0.02");
        let r = datavortex::kernels::graph::dv::run(&locals, gcfg.vertices(), root, machine);
        validate_bfs(&csr, root, &r.parents).expect("BFS tree invalid under chaos");
    }
}

#[test]
fn link_faults_obey_conservation() {
    // drop/dup act on the wire, before FIFO admission: with a roomy FIFO,
    // accepted = offered − drops + dups, exactly.
    let offered = 2000u64;
    let metrics = Arc::new(MetricsRegistry::enabled());
    let machine = chaos_machine("seed=5,drop=0.1,dup=0.1");
    let results = DvCluster::from_spec(SimSpec::new(2).machine(machine).metrics(Arc::clone(&metrics)))
        .run(move |dv, ctx| {
            if dv.node() == 0 {
                let words: Vec<u64> = (0..offered).collect();
                dv.send_fifo(ctx, 1, &words, SCRATCH_GC, SendMode::Dma { cached_headers: true });
                ctx.delay(us(500));
                0
            } else {
                ctx.delay(us(1000));
                dv.fifo_drain(ctx, usize::MAX).len() as u64
            }
        })
        .result;
    let snap = metrics.snapshot();
    let drops = snap.counter_total("fault.link.drops");
    let dups = snap.counter_total("fault.link.dups");
    assert!(drops > 0 && dups > 0, "both fault kinds must fire at 10%");
    assert_eq!(results[1], offered - drops + dups, "link-level conservation");
}

#[test]
fn ejection_stalls_delay_but_do_not_lose() {
    let offered = 512u64;
    let metrics = Arc::new(MetricsRegistry::enabled());
    let machine = chaos_machine("seed=9,stall=1.0:5000");
    let results = DvCluster::from_spec(SimSpec::new(2).machine(machine).metrics(Arc::clone(&metrics)))
        .run(move |dv, ctx| {
            if dv.node() == 0 {
                let words: Vec<u64> = (0..offered).collect();
                dv.send_fifo(ctx, 1, &words, SCRATCH_GC, SendMode::Dma { cached_headers: true });
                ctx.delay(us(500));
                0
            } else {
                ctx.delay(us(1000));
                dv.fifo_drain(ctx, usize::MAX).len() as u64
            }
        })
        .result;
    assert_eq!(results[1], offered, "stalls reorder time, not data");
    let snap = metrics.snapshot();
    assert!(snap.counter_total("fault.eject.stalls") > 0);
    assert!(snap.counter_total("fault.eject.stall_ps") > 0);
}

#[test]
fn delayed_group_counter_set_reproduces_the_section_iii_race() {
    // Delay every GroupCounterSet packet 100 µs: the three decrements
    // land first (counter → −3), then the set overwrites them (→ 3), so
    // the counter never crosses zero — the set/decrement race the paper
    // warns about, forced on demand.
    let metrics = Arc::new(MetricsRegistry::enabled());
    let machine = chaos_machine("seed=17,gcrace=1.0:100000");
    let results = DvCluster::from_spec(SimSpec::new(2).machine(machine).metrics(Arc::clone(&metrics)))
        .run(|dv, ctx| {
            if dv.node() == 0 {
                dv.gc_set_remote(ctx, 1, 11, 3, SendMode::DirectWrite { cached_headers: true });
                dv.write_remote(
                    ctx,
                    1,
                    0,
                    &[1, 2, 3],
                    11,
                    SendMode::DirectWrite { cached_headers: true },
                );
                ctx.delay(us(400));
                (true, 0, 0)
            } else {
                // Decrements beat the delayed set…
                ctx.delay(us(30));
                let mid = dv.gc_value(11);
                // …which then lands and overwrites them.
                ctx.delay(us(120));
                let done = dv.gc_wait_zero(ctx, 11, Some(ctx.now() + us(100)));
                (done, mid, dv.gc_value(11))
            }
        })
        .result;
    let (done, mid, fin) = results[1];
    assert_eq!(mid, -3, "decrements must arrive before the delayed set");
    assert_eq!(fin, 3, "the late set must overwrite the negative counter");
    assert!(!done, "the counter can never reach zero after the race");
    let snap = metrics.snapshot();
    assert!(snap.counter_total("fault.gc.delayed_sets") >= 1);
    assert!(snap.counter_total("vic.gc.set_races") >= 1);
}

#[test]
fn fifo_try_send_applies_backpressure_at_zero_credit() {
    let mut machine = MachineConfig::paper_cluster();
    machine.dv.fifo_capacity = 16;
    let metrics = Arc::new(MetricsRegistry::enabled());
    let results = DvCluster::from_spec(SimSpec::new(2).machine(machine).metrics(Arc::clone(&metrics)))
        .run(|dv, ctx| {
            if dv.node() == 0 {
                let mut accepted = 0u64;
                let mode = SendMode::DirectWrite { cached_headers: true };
                loop {
                    match dv.fifo_try_send(ctx, 1, &[accepted], SCRATCH_GC, mode) {
                        Ok(_) => accepted += 1,
                        Err(bp) => {
                            assert!(bp.credit <= 0, "refusal implies exhausted credit");
                            break;
                        }
                    }
                }
                accepted
            } else {
                // Never drains: credit can only fall.
                ctx.delay(us(500));
                0
            }
        })
        .result;
    assert_eq!(results[0], 16, "credit admits exactly the FIFO capacity");
    assert!(metrics.snapshot().counter_total("api.fifo.backpressure_rejects") >= 1);
    }
