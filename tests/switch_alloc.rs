//! The switch simulator's hot path must be allocation-free: one `step`
//! touches only the preallocated double-buffered arena, the per-cylinder
//! worklists, and the caller's reused delivery buffer. A counting global
//! allocator wraps the system one (the same technique as
//! `tests/metrics_alloc.rs`); a saturated measurement window of steps must
//! leave the counter untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use datavortex::core::rng::SplitMix64;
use datavortex::switch::{SwitchSim, Topology};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator plus one relaxed
// counter bump; all GlobalAlloc contract obligations are System's own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: layout is forwarded unchanged to the System allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout came from the matching System.alloc above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// One test function: the allocation counter is process-global, so a
// second test running on a sibling thread would bump it mid-measurement.
#[test]
fn saturated_step_never_allocates() {
    // A 64-port switch (H=16, A=4) under a deep saturating backlog: every
    // port holds 64 queued packets, so the arena runs at high occupancy
    // and contention deflections fire throughout the window.
    let topo = Topology::new(16, 4);
    let ports = topo.ports();
    let mut sw = SwitchSim::new(topo);
    let mut rng = SplitMix64::new(0xA110C);
    for src in 0..ports {
        for k in 0..128u64 {
            sw.enqueue(src, rng.next_below(ports as u64) as usize, (src as u64) << 16 | k);
        }
    }
    let mut out = Vec::with_capacity(ports);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut delivered = 0u64;
    for _ in 0..100 {
        out.clear();
        sw.step_into(&mut out);
        delivered += out.len() as u64;
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after,
        before,
        "step_into allocated {} times across 100 saturated cycles",
        after - before
    );

    // The window did real work: packets flowed and contention occurred.
    assert!(delivered > 0, "saturated window must deliver packets");
    assert_eq!(sw.ejected(), delivered);
    assert!(sw.outstanding() > 0, "window should end still saturated");

    // Sanity: draining the rest outside the measured window completes.
    let rest = sw.drain(1_000_000);
    assert_eq!(delivered + rest.len() as u64, (ports * 128) as u64);
}
