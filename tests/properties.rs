//! Property-style tests over the core data structures and invariants.
//!
//! Each test draws many random cases from a seeded [`SplitMix64`] stream —
//! a self-contained replacement for an external property-testing crate.
//! Failures print the offending case's seed/index so a case can be
//! replayed exactly; the streams are fixed-seed, so runs are fully
//! deterministic (no `DV-W003` non-seeded randomness).

use datavortex::core::packet::{AddressSpace, PacketHeader};
use datavortex::core::rng::{hpcc_starts, HpccStream, SplitMix64};
use datavortex::core::stats::harmonic_mean;
use datavortex::kernels::fft::{fft_in_place, ifft_in_place, max_error, naive_dft, Complex};
use datavortex::kernels::graph::{scramble, serial_bfs, validate_bfs, Csr};
use datavortex::kernels::util::BlockDist;
use datavortex::switch::{SwitchSim, Topology};

/// Number of random cases per lightweight property.
const CASES: usize = 64;

fn arb_space(r: &mut SplitMix64) -> AddressSpace {
    match r.next_below(4) {
        0 => AddressSpace::DvMemory,
        1 => AddressSpace::SurpriseFifo,
        2 => AddressSpace::GroupCounterSet,
        _ => AddressSpace::Query,
    }
}

#[test]
fn packet_header_roundtrips() {
    let mut r = SplitMix64::new(0xA001);
    for case in 0..CASES {
        let h = PacketHeader {
            dest: r.next_below(4096) as usize,
            src: r.next_below(4096) as usize,
            space: arb_space(&mut r),
            address: r.next_below(1 << 22) as u32,
            group_counter: r.next_below(64) as u8,
        };
        assert_eq!(PacketHeader::decode(h.encode()), h, "case {case}: {h:?}");
    }
}

#[test]
fn hpcc_jump_equals_sequential() {
    let mut r = SplitMix64::new(0xA002);
    for case in 0..16 {
        let start = r.next_below(100_000) as i64;
        let len = 1 + r.next_below(63) as usize;
        let mut seq = HpccStream::starting_at(0);
        for _ in 0..start {
            seq.next_u64();
        }
        let mut jumped = HpccStream::starting_at(start);
        for _ in 0..len {
            assert_eq!(seq.next_u64(), jumped.next_u64(), "case {case} start {start}");
        }
        assert_eq!(hpcc_starts(start), HpccStream::starting_at(start).next_u64());
    }
}

#[test]
fn block_dist_owner_local_consistent() {
    let mut r = SplitMix64::new(0xA003);
    for case in 0..CASES {
        let total = 1 + r.next_below(10_000) as usize;
        let parts = 1 + r.next_below(63) as usize;
        let d = BlockDist::new(total, parts);
        let covered: usize = (0..parts).map(|p| d.count(p)).sum();
        assert_eq!(covered, total, "case {case}: total {total} parts {parts}");
        // Spot-check evenly spaced indices.
        for i in (0..total).step_by((total / 17).max(1)) {
            let o = d.owner(i);
            assert!(d.local(i) < d.count(o));
            assert_eq!(d.start(o) + d.local(i), i);
        }
    }
}

#[test]
fn fft_matches_dft_on_random_signals() {
    let mut r = SplitMix64::new(0xA004);
    for case in 0..24 {
        let log_n = 1 + r.next_below(6) as u32;
        let n = 1usize << log_n;
        let mut rng = SplitMix64::new(r.next_u64());
        let x: Vec<Complex> =
            (0..n).map(|_| Complex::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect();
        let mut y = x.clone();
        fft_in_place(&mut y);
        assert!(max_error(&y, &naive_dft(&x)) < 1e-8, "case {case} n {n}");
        ifft_in_place(&mut y);
        assert!(max_error(&y, &x) < 1e-9, "case {case} n {n}");
    }
}

#[test]
fn switch_delivers_every_packet_exactly_once() {
    let mut r = SplitMix64::new(0xA005);
    for case in 0..32 {
        let height_log = 1 + r.next_below(4) as u32;
        let angles = 1 + r.next_below(5) as usize;
        let packets = 1 + r.next_below(199) as usize;
        let topo = Topology::new(1 << height_log, angles);
        let ports = topo.ports();
        let mut sw = SwitchSim::new(topo);
        let mut rng = SplitMix64::new(r.next_u64());
        let mut expect = std::collections::BTreeMap::new();
        for tag in 0..packets as u64 {
            let s = rng.next_below(ports as u64) as usize;
            let d = rng.next_below(ports as u64) as usize;
            sw.enqueue(s, d, tag);
            expect.insert(tag, d);
        }
        let delivered = sw.drain(2_000_000);
        assert_eq!(delivered.len(), packets, "case {case}");
        let mut seen = std::collections::BTreeSet::new();
        for dv in delivered {
            assert!(seen.insert(dv.tag), "case {case}: duplicate delivery");
            assert_eq!(expect[&dv.tag], dv.dst_port, "case {case}");
        }
    }
}

#[test]
fn scramble_stays_bijective() {
    for scale in 1u32..16 {
        let n = 1u64 << scale;
        let mut seen = vec![false; n as usize];
        for v in 0..n {
            let s = scramble(v, scale) as usize;
            assert!(!seen[s], "scale {scale}: collision at {v}");
            seen[s] = true;
        }
    }
}

#[test]
fn random_graph_bfs_trees_validate() {
    let mut r = SplitMix64::new(0xA006);
    for case in 0..CASES {
        let n = 2 + r.next_below(198) as usize;
        let m = 1 + r.next_below(499) as usize;
        let mut rng = SplitMix64::new(r.next_u64());
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.next_below(n as u64) as u32, rng.next_below(n as u64) as u32))
            .collect();
        let csr = Csr::build(n, &edges);
        let root = rng.next_below(n as u64) as u32;
        let (parents, levels) = serial_bfs(&csr, root);
        assert!(validate_bfs(&csr, root, &parents).is_ok(), "case {case}");
        // Levels are a BFS: every edge spans <= 1 level.
        for v in 0..n as u32 {
            if levels[v as usize] < 0 {
                continue;
            }
            for &w in csr.neighbors(v) {
                assert!(
                    (levels[v as usize] - levels[w as usize]).abs() <= 1,
                    "case {case}: edge ({v},{w}) spans >1 level"
                );
            }
        }
    }
}

#[test]
fn harmonic_mean_bounded_by_min_and_max() {
    let mut r = SplitMix64::new(0xA007);
    for case in 0..CASES {
        let len = 1 + r.next_below(19) as usize;
        let xs: Vec<f64> = (0..len).map(|_| 0.001 + r.next_f64() * 1e6).collect();
        let h = harmonic_mean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        assert!(h >= min * 0.999 && h <= max * 1.001, "case {case}: {h} not in [{min}, {max}]");
    }
}

/// The heavyweight one: GUPS over both simulated networks equals the
/// serial reference for arbitrary (small) configurations.
#[test]
fn gups_backends_match_serial_for_random_configs() {
    use datavortex::kernels::gups::{dv, mpi, serial_reference, GupsConfig};
    let mut r = SplitMix64::new(0xA008);
    for case in 0..8 {
        let cfg = GupsConfig {
            table_per_node: 1 << (6 + r.next_below(3) as u32),
            updates_per_node: 1 << (6 + r.next_below(3) as u32),
            bucket: 128,
            stream_offset: 0,
        };
        let nodes = 1 << (1 + r.next_below(2) as u32);
        let (_, expect) = serial_reference(&cfg, nodes);
        assert_eq!(dv::run(cfg, nodes).checksum, expect, "case {case}");
        assert_eq!(mpi::run(cfg, nodes).checksum, expect, "case {case}");
    }
}

/// MPI alltoall reassembles arbitrary ragged payloads correctly.
#[test]
fn alltoallv_reassembles_ragged_blocks() {
    use datavortex::mpi::{MpiCluster, Payload};
    let mut r = SplitMix64::new(0xA009);
    for case in 0..8 {
        let seed = r.next_u64();
        let nodes = 2 + r.next_below(4) as usize;
        let results = MpiCluster::from_spec(datavortex::core::spec::SimSpec::new(nodes)).run(move |comm, ctx| {
            let me = comm.rank() as u64;
            let mut rng = SplitMix64::new(seed ^ me);
            let blocks: Vec<Payload> = (0..comm.size())
                .map(|d| {
                    let len = rng.next_below(40) as usize;
                    Payload::U64(
                        (0..len as u64).map(|i| me * 1_000_000 + d as u64 * 1_000 + i).collect(),
                    )
                })
                .collect();
            let sizes: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
            let got = comm.alltoall(ctx, blocks);
            (sizes, got.into_iter().map(|p| p.into_u64()).collect::<Vec<_>>())
        })
        .result;
        // Every received word identifies its (src, dst, index) triple.
        for (dst, (_, got)) in results.iter().enumerate() {
            for (src, block) in got.iter().enumerate() {
                let expected_len = results[src].0[dst];
                assert_eq!(block.len(), expected_len, "case {case}");
                for (i, w) in block.iter().enumerate() {
                    assert_eq!(*w, src as u64 * 1_000_000 + dst as u64 * 1_000 + i as u64);
                }
            }
        }
    }
}

/// The heat solvers match the serial reference bit-exactly for random
/// grids and decompositions.
#[test]
fn heat_backends_match_serial_for_random_configs() {
    use datavortex::apps::heat::{dv, mpi, Halo, HeatConfig, SerialHeat};
    let mut r = SplitMix64::new(0xA00A);
    for case in 0..6 {
        let (nx_l, ny_l, nz_l) =
            (1 + r.next_below(3) as usize, 1 + r.next_below(3) as usize, 1 + r.next_below(3) as usize);
        let (px, py, pz) =
            (1 + r.next_below(2) as usize, 1 + r.next_below(2) as usize, 1 + r.next_below(2) as usize);
        let steps = 1 + r.next_below(3) as usize;
        let cfg = HeatConfig {
            n: (nx_l * px * 2, ny_l * py * 2, nz_l * pz * 2),
            grid: (px, py, pz),
            r: 0.12,
            steps,
            report_every: steps,
            halo: Halo::Line,
        };
        let mut serial = SerialHeat::new(&cfg);
        for _ in 0..steps {
            serial.step();
        }
        let d = dv::run(cfg);
        let m = mpi::run(cfg);
        assert_eq!(&mpi::assemble(&cfg, &d.fields), &serial.u, "case {case}");
        assert_eq!(&mpi::assemble(&cfg, &m.fields), &serial.u, "case {case}");
    }
}

/// The SNAP sweeps match the serial reference bit-exactly for random
/// meshes, decompositions, and chunk sizes.
#[test]
fn snap_backends_match_serial_for_random_configs() {
    use datavortex::apps::snap::{assemble_phi, dv, mpi, SerialSnap, SnapConfig};
    let mut r = SplitMix64::new(0xA00B);
    for case in 0..6 {
        let cfg = SnapConfig {
            n: (
                2 + r.next_below(8) as usize,
                (1 + r.next_below(3) as usize) * (1 + r.next_below(2) as usize),
                (1 + r.next_below(3) as usize) * (1 + r.next_below(2) as usize),
            ),
            grid: (1, 1),
            groups: 1 + r.next_below(2) as usize,
            angles: 2,
            chunk: 1 + r.next_below(5) as usize,
            sigma: 0.6,
        };
        // Re-derive a decomposition that divides the mesh.
        let py = if cfg.n.1.is_multiple_of(2) { 2 } else { 1 };
        let pz = if cfg.n.2.is_multiple_of(2) { 2 } else { 1 };
        let cfg = SnapConfig { grid: (py, pz), ..cfg };
        let mut serial = SerialSnap::new(cfg);
        serial.sweep_all();
        let d = dv::run(cfg);
        let m = mpi::run(cfg);
        assert_eq!(&assemble_phi(&cfg, &d.fields), &serial.phi, "case {case}");
        assert_eq!(&assemble_phi(&cfg, &m.fields), &serial.phi, "case {case}");
    }
}
