//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use datavortex::core::packet::{AddressSpace, PacketHeader};
use datavortex::core::rng::{hpcc_starts, HpccStream};
use datavortex::core::stats::harmonic_mean;
use datavortex::kernels::fft::{fft_in_place, ifft_in_place, max_error, naive_dft, Complex};
use datavortex::kernels::graph::{scramble, serial_bfs, validate_bfs, Csr};
use datavortex::kernels::util::BlockDist;
use datavortex::switch::{SwitchSim, Topology};

fn arb_space() -> impl Strategy<Value = AddressSpace> {
    prop_oneof![
        Just(AddressSpace::DvMemory),
        Just(AddressSpace::SurpriseFifo),
        Just(AddressSpace::GroupCounterSet),
        Just(AddressSpace::Query),
    ]
}

proptest! {
    #[test]
    fn packet_header_roundtrips(
        dest in 0usize..4096,
        src in 0usize..4096,
        addr in 0u32..(1 << 22),
        gc in 0u8..64,
        space in arb_space(),
    ) {
        let h = PacketHeader { dest, src, space, address: addr, group_counter: gc };
        prop_assert_eq!(PacketHeader::decode(h.encode()), h);
    }

    #[test]
    fn hpcc_jump_equals_sequential(start in 0i64..100_000, len in 1usize..64) {
        let mut seq = HpccStream::starting_at(0);
        for _ in 0..start {
            seq.next_u64();
        }
        let mut jumped = HpccStream::starting_at(start);
        for _ in 0..len {
            prop_assert_eq!(seq.next_u64(), jumped.next_u64());
        }
        prop_assert_eq!(hpcc_starts(start), HpccStream::starting_at(start).next_u64());
    }

    #[test]
    fn block_dist_owner_local_consistent(total in 1usize..10_000, parts in 1usize..64) {
        let d = BlockDist::new(total, parts);
        let mut covered = 0usize;
        for p in 0..parts {
            covered += d.count(p);
        }
        prop_assert_eq!(covered, total);
        // Spot-check random indices.
        for i in (0..total).step_by((total / 17).max(1)) {
            let o = d.owner(i);
            prop_assert!(d.local(i) < d.count(o));
            prop_assert_eq!(d.start(o) + d.local(i), i);
        }
    }

    #[test]
    fn fft_matches_dft_on_random_signals(
        log_n in 1u32..7,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let mut rng = datavortex::core::rng::SplitMix64::new(seed);
        let x: Vec<Complex> =
            (0..n).map(|_| Complex::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect();
        let mut y = x.clone();
        fft_in_place(&mut y);
        prop_assert!(max_error(&y, &naive_dft(&x)) < 1e-8);
        ifft_in_place(&mut y);
        prop_assert!(max_error(&y, &x) < 1e-9);
    }

    #[test]
    fn switch_delivers_every_packet_exactly_once(
        seed in any::<u64>(),
        height_log in 1u32..5,
        angles in 1usize..6,
        packets in 1usize..200,
    ) {
        let topo = Topology::new(1 << height_log, angles);
        let ports = topo.ports();
        let mut sw = SwitchSim::new(topo);
        let mut rng = datavortex::core::rng::SplitMix64::new(seed);
        let mut expect = std::collections::HashMap::new();
        for tag in 0..packets as u64 {
            let s = rng.next_below(ports as u64) as usize;
            let d = rng.next_below(ports as u64) as usize;
            sw.enqueue(s, d, tag);
            expect.insert(tag, d);
        }
        let delivered = sw.drain(2_000_000);
        prop_assert_eq!(delivered.len(), packets);
        let mut seen = std::collections::HashSet::new();
        for dv in delivered {
            prop_assert!(seen.insert(dv.tag), "duplicate delivery");
            prop_assert_eq!(expect[&dv.tag], dv.dst_port);
        }
    }

    #[test]
    fn scramble_stays_bijective(scale in 1u32..16) {
        let n = 1u64 << scale;
        let mut seen = vec![false; n as usize];
        for v in 0..n {
            let s = scramble(v, scale) as usize;
            prop_assert!(!seen[s]);
            seen[s] = true;
        }
    }

    #[test]
    fn random_graph_bfs_trees_validate(seed in any::<u64>(), n in 2usize..200, m in 1usize..500) {
        let mut rng = datavortex::core::rng::SplitMix64::new(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.next_below(n as u64) as u32, rng.next_below(n as u64) as u32))
            .collect();
        let csr = Csr::build(n, &edges);
        let root = rng.next_below(n as u64) as u32;
        let (parents, levels) = serial_bfs(&csr, root);
        prop_assert!(validate_bfs(&csr, root, &parents).is_ok());
        // Levels are a BFS: every edge spans <= 1 level.
        for v in 0..n as u32 {
            if levels[v as usize] < 0 { continue; }
            for &w in csr.neighbors(v) {
                prop_assert!((levels[v as usize] - levels[w as usize]).abs() <= 1);
            }
        }
    }

    #[test]
    fn harmonic_mean_bounded_by_min_and_max(xs in prop::collection::vec(0.001f64..1e6, 1..20)) {
        let h = harmonic_mean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(h >= min * 0.999 && h <= max * 1.001, "{h} not in [{min}, {max}]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The heavyweight one: GUPS over both simulated networks equals the
    /// serial reference for arbitrary (small) configurations.
    #[test]
    fn gups_backends_match_serial_for_random_configs(
        table_log in 6u32..9,
        updates_log in 6u32..9,
        nodes_log in 1u32..3,
    ) {
        use datavortex::kernels::gups::{dv, mpi, serial_reference, GupsConfig};
        let cfg = GupsConfig {
            table_per_node: 1 << table_log,
            updates_per_node: 1 << updates_log,
            bucket: 128, stream_offset: 0 };
        let nodes = 1 << nodes_log;
        let (_, expect) = serial_reference(&cfg, nodes);
        prop_assert_eq!(dv::run(cfg, nodes).checksum, expect);
        prop_assert_eq!(mpi::run(cfg, nodes).checksum, expect);
    }

    /// MPI alltoall reassembles arbitrary ragged payloads correctly.
    #[test]
    fn alltoallv_reassembles_ragged_blocks(seed in any::<u64>(), nodes in 2usize..6) {
        use datavortex::mpi::{MpiCluster, Payload};
        let (_, results) = MpiCluster::new(nodes).run(move |comm, ctx| {
            let me = comm.rank() as u64;
            let mut rng = datavortex::core::rng::SplitMix64::new(seed ^ me);
            let blocks: Vec<Payload> = (0..comm.size())
                .map(|d| {
                    let len = rng.next_below(40) as usize;
                    Payload::U64((0..len as u64).map(|i| me * 1_000_000 + d as u64 * 1_000 + i).collect())
                })
                .collect();
            let sizes: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
            let got = comm.alltoall(ctx, blocks);
            (sizes, got.into_iter().map(|p| p.into_u64()).collect::<Vec<_>>())
        });
        // Every received word identifies its (src, dst, index) triple.
        for (dst, (_, got)) in results.iter().enumerate() {
            for (src, block) in got.iter().enumerate() {
                let expected_len = results[src].0[dst];
                prop_assert_eq!(block.len(), expected_len);
                for (i, w) in block.iter().enumerate() {
                    prop_assert_eq!(*w, src as u64 * 1_000_000 + dst as u64 * 1_000 + i as u64);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The heat solvers match the serial reference bit-exactly for random
    /// grids and decompositions.
    #[test]
    fn heat_backends_match_serial_for_random_configs(
        nx_l in 1usize..4, ny_l in 1usize..4, nz_l in 1usize..4,
        px in 1usize..3, py in 1usize..3, pz in 1usize..3,
        steps in 1usize..4,
    ) {
        use datavortex::apps::heat::{Halo, dv, mpi, HeatConfig, SerialHeat};
        let cfg = HeatConfig {
            n: (nx_l * px * 2, ny_l * py * 2, nz_l * pz * 2),
            grid: (px, py, pz),
            r: 0.12,
            steps,
            report_every: steps, halo: Halo::Line };
        let mut serial = SerialHeat::new(&cfg);
        for _ in 0..steps {
            serial.step();
        }
        let d = dv::run(cfg);
        let m = mpi::run(cfg);
        prop_assert_eq!(&mpi::assemble(&cfg, &d.fields), &serial.u);
        prop_assert_eq!(&mpi::assemble(&cfg, &m.fields), &serial.u);
    }

    /// The SNAP sweeps match the serial reference bit-exactly for random
    /// meshes, decompositions, and chunk sizes.
    #[test]
    fn snap_backends_match_serial_for_random_configs(
        nx in 2usize..10, nyb in 1usize..4, nzb in 1usize..4,
        py in 1usize..3, pz in 1usize..3,
        groups in 1usize..3,
        chunk in 1usize..6,
    ) {
        use datavortex::apps::snap::{dv, mpi, assemble_phi, SerialSnap, SnapConfig};
        let cfg = SnapConfig {
            n: (nx, nyb * py, nzb * pz),
            grid: (py, pz),
            groups,
            angles: 2,
            chunk,
            sigma: 0.6,
        };
        let mut serial = SerialSnap::new(cfg);
        serial.sweep_all();
        let d = dv::run(cfg);
        let m = mpi::run(cfg);
        prop_assert_eq!(&assemble_phi(&cfg, &d.fields), &serial.phi);
        prop_assert_eq!(&assemble_phi(&cfg, &m.fields), &serial.phi);
    }
}
