//! The rebuilt routed-network simulator's hot path must be allocation-free
//! in steady state: one `step` touches only the packet arena, the free
//! list, the fixed-capacity ring queues, the bitmap worklists, and the
//! caller's reused delivery buffer. A counting global allocator wraps the
//! system one (the same technique as `tests/switch_alloc.rs`); a measured
//! drain of a backlog identical to a warm-up backlog must leave the
//! counter untouched — the warm-up drives every buffer to the exact
//! high-water mark the measured phase needs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use datavortex::core::rng::SplitMix64;
use datavortex::switch::{AnyTopology, RoutedNetSim, TopoKind};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator plus one relaxed
// counter bump; all GlobalAlloc contract obligations are System's own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: layout is forwarded unchanged to the System allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout came from the matching System.alloc above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Enqueue the seeded backlog used by both the warm-up and measured
/// phases: `depth` packets per port, destinations from `seed`.
fn enqueue_backlog(sim: &mut RoutedNetSim, ports: usize, depth: u64, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for src in 0..ports {
        for k in 0..depth {
            sim.enqueue(src, rng.next_below(ports as u64) as usize, (src as u64) << 16 | k);
        }
    }
}

// One test function: the allocation counter is process-global, so a
// second test running on a sibling thread would bump it mid-measurement.
#[test]
fn steady_state_step_never_allocates() {
    for kind in [TopoKind::FatTree, TopoKind::MinPath, TopoKind::Vortex] {
        let net = AnyTopology::for_ports(kind, 64);
        let mut sim = RoutedNetSim::new(net);
        let ports = 64;
        let mut out = Vec::with_capacity(ports);

        // Warm-up: drain a full backlog so the arena, free list, and
        // scratch buffers all grow to the exact high-water marks the
        // identical measured backlog will need.
        enqueue_backlog(&mut sim, ports, 64, 0xA110C);
        while sim.outstanding() > 0 {
            out.clear();
            sim.step_into(&mut out);
        }
        let warm_cycles = sim.cycle();

        // Measured phase: the same backlog again (enqueue itself is
        // outside the window — injection FIFOs legitimately grow there).
        enqueue_backlog(&mut sim, ports, 64, 0xA110C);
        let mut delivered = 0u64;
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        while sim.outstanding() > 0 {
            out.clear();
            sim.step_into(&mut out);
            delivered += out.len() as u64;
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after,
            before,
            "{kind:?}: step_into allocated {} times across the measured drain",
            after - before
        );

        // The window did real work and repeated the warm-up exactly.
        assert_eq!(delivered, (ports * 64) as u64);
        assert_eq!(sim.cycle(), warm_cycles * 2, "{kind:?}: phases must be identical");
    }
}
