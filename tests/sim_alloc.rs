//! The sharded engine's steady-state hot loop must be allocation-free:
//! a warmed `Port` send/recv cycle runs entirely on the pooled per-port
//! timer, the preallocated shard heaps, and the self-resume fast path
//! (parking *is* dispatching — no scheduler thread, no context switch).
//! A counting global allocator wraps the system one (the same technique
//! as `tests/switch_alloc.rs`); a measured window of thousands of
//! deliveries must leave the counter untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use datavortex::core::time::us;
use datavortex::sim::{Engine, Port, Sim};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator plus one relaxed
// counter bump; all GlobalAlloc contract obligations are System's own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: layout is forwarded unchanged to the System allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout came from the matching System.alloc above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// One test function: the allocation counter is process-global, so a
// second test running on a sibling thread would bump it mid-measurement.
#[test]
fn steady_state_dispatch_never_allocates() {
    let sim = Sim::with_engine(Engine::Sharded, 4);
    let measured = std::sync::Arc::new(AtomicU64::new(0));
    let measured_in = std::sync::Arc::clone(&measured);

    sim.spawn("pump", move |ctx| {
        let port: Port<u64> = Port::new();

        // Warm-up: the first send registers the pooled timer and sizes the
        // staging heap / mailbox; a few hundred cycles also warm the shard
        // event heaps past their high-water mark.
        for i in 0..512u64 {
            port.send_delayed(ctx, us(1), i);
            let (_, got) = port.recv(ctx);
            assert_eq!(got, i);
        }

        // Measured window: every cycle is a pooled timer commit riding the
        // self-resume fast path. Nothing may allocate.
        let start = ctx.now();
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 0..4096u64 {
            port.send_delayed(ctx, us(1), i);
            let (at, got) = port.recv(ctx);
            assert_eq!(got, i);
            assert!(at > start);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        measured_in.store(after - before, Ordering::Relaxed);

        // The window did real virtual-time work.
        assert!(ctx.now() >= start + us(4096), "virtual clock must advance");
        assert!(port.is_empty(), "every message was consumed");
    });

    let elapsed = sim.run();
    assert!(elapsed >= us(4608), "run covers warm-up plus window");
    assert_eq!(
        measured.load(Ordering::Relaxed),
        0,
        "sharded dispatch allocated inside the steady-state window"
    );
}
