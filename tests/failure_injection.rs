//! Failure injection: the sharp edges the paper warns about, exercised
//! deliberately — FIFO overflow, the group-counter set/decrement race,
//! out-of-order delivery, and simulated-program deadlock.

use datavortex::api::{DvCluster, SendMode};
use datavortex::core::config::MachineConfig;
use datavortex::core::packet::SCRATCH_GC;
use datavortex::core::spec::SimSpec;
use datavortex::core::time::us;

#[test]
fn fifo_overflow_drops_packets_and_reports_them() {
    // Shrink the FIFO so overflow is cheap to provoke; blast packets at a
    // node that never drains.
    let mut cfg = MachineConfig::paper_cluster();
    cfg.dv.fifo_capacity = 256;
    let results = DvCluster::from_spec(SimSpec::new(2).machine(cfg)).run(|dv, ctx| {
        if dv.node() == 0 {
            let words: Vec<u64> = (0..1024).collect();
            dv.send_fifo(ctx, 1, &words, SCRATCH_GC, SendMode::Dma { cached_headers: true });
            ctx.delay(us(200));
            (0, 0)
        } else {
            // The victim sleeps through the flood, then counts survivors.
            ctx.delay(us(500));
            let got = dv.fifo_drain(ctx, usize::MAX).len();
            (got, dv.fifo_dropped())
        }
    })
    .result;
    let (received, dropped) = results[1];
    assert_eq!(received, 256, "exactly the FIFO capacity survives");
    assert_eq!(dropped, 1024 - 256, "overflow must be counted, not silent");
}

#[test]
fn fifo_survives_at_capacity_boundary() {
    let mut cfg = MachineConfig::paper_cluster();
    cfg.dv.fifo_capacity = 128;
    let results = DvCluster::from_spec(SimSpec::new(2).machine(cfg)).run(|dv, ctx| {
        if dv.node() == 0 {
            let words: Vec<u64> = (0..128).collect();
            dv.send_fifo(ctx, 1, &words, SCRATCH_GC, SendMode::Dma { cached_headers: true });
            0
        } else {
            ctx.delay(us(300));
            assert_eq!(dv.fifo_dropped(), 0);
            dv.fifo_drain(ctx, usize::MAX).len()
        }
    })
    .result;
    assert_eq!(results[1], 128);
}

#[test]
fn counter_overshoot_never_reads_as_complete() {
    // More packets than the preset: the counter goes negative and a wait
    // with a deadline must time out (the hardware's exact-zero test).
    let results = DvCluster::from_spec(SimSpec::new(2)).run(|dv, ctx| {
        if dv.node() == 1 {
            dv.gc_set_local(ctx, 11, 2);
            dv.barrier(ctx);
            ctx.delay(us(300));
            let ok = dv.gc_wait_zero(ctx, 11, Some(ctx.now() + us(100)));
            (ok, dv.gc_value(11))
        } else {
            dv.barrier(ctx);
            dv.write_remote(ctx, 1, 0, &[1, 2, 3], 11, SendMode::DirectWrite { cached_headers: true });
            (true, 0)
        }
    })
    .result;
    let (ok, value) = results[1];
    assert!(!ok, "overshoot must not satisfy the zero test");
    assert_eq!(value, -1);
}

#[test]
fn interleaved_batches_from_many_senders_preserve_every_packet() {
    // Out-of-order arrival across senders: each payload is tagged with its
    // origin; all must arrive exactly once regardless of interleaving.
    let n = 6;
    let per = 200u64;
    let results = DvCluster::from_spec(SimSpec::new(n)).run(move |dv, ctx| {
        let me = dv.node();
        if me != 0 {
            for chunk in 0..4 {
                let words: Vec<u64> =
                    (0..per / 4).map(|i| (me as u64) << 32 | (chunk * per / 4 + i)).collect();
                dv.send_fifo(ctx, 0, &words, SCRATCH_GC, SendMode::Dma { cached_headers: true });
                ctx.delay(us(me as u64)); // stagger to force interleaving
            }
            Vec::new()
        } else {
            let mut got = Vec::new();
            while got.len() < (n - 1) * per as usize {
                got.push(dv.fifo_recv(ctx));
            }
            got
        }
    })
    .result;
    let mut got = results[0].clone();
    got.sort_unstable();
    got.dedup();
    assert_eq!(got.len(), (n - 1) * per as usize, "every packet exactly once");
}

#[test]
fn deadlocked_programs_are_diagnosed_not_hung() {
    // A receive that can never be satisfied must panic with a named
    // process, not hang the host test suite.
    let result = std::panic::catch_unwind(|| {
        DvCluster::from_spec(SimSpec::new(2)).run(|dv, ctx| {
            if dv.node() == 0 {
                let _ = dv.fifo_recv(ctx); // nobody ever sends
            }
        })
    });
    let err = result.expect_err("deadlock must be detected");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "diagnostic should name the condition: {msg}");
}
