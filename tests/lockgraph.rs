//! Cross-check: the static lock-order graph `dv-lint` extracts from
//! source must agree with the runtime lock-order audit in
//! `dv_core::sync`.
//!
//! The two passes see different things. The runtime audit
//! ([`lock_order_edges`]/[`lock_order_conflicts`]) records only the
//! acquisition orders an actual workload exercised; the static graph
//! sees every nesting site in the source, including paths no test runs.
//! Agreement means:
//!
//! 1. The static pass knows every lock name the runtime ever observed
//!    (no `Mutex::new_named` site escapes the binding extraction).
//! 2. Runtime inversions stay inside the audited benign set (see
//!    `tests/determinism.rs`: the `api.vic`/`sim.kernel` inversion
//!    cannot deadlock because the scheduler runs exactly one simulated
//!    process at a time), and the static graph — which only models
//!    same-function nesting, so it does not see that cross-function
//!    waker path — is acyclic.
//!
//! The audit only records in debug builds, so the runtime half is a
//! no-op under `--release` (the static half still runs).

use std::path::Path;

use datavortex::core::sync::{lock_order_conflicts, lock_order_edges};
use datavortex::kernels::gups::{self, GupsConfig};
use dv_lint::{run_lint, Allowlist};

#[test]
fn static_lock_graph_agrees_with_runtime_audit() {
    // Exercise both backends so the runtime audit sees the scheduler,
    // VIC, barrier, and MPI lock pairs a real workload takes.
    let cfg =
        GupsConfig { table_per_node: 1 << 9, updates_per_node: 1 << 9, bucket: 256, stream_offset: 0 };
    let dv = gups::dv::run(cfg, 4);
    let mpi = gups::mpi::run(cfg, 4);
    assert!(dv.checksum != 0 && mpi.checksum != 0, "workloads must actually run");

    // Static pass over the workspace that produced this binary.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow = Allowlist::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = run_lint(root, &allow).expect("workspace sources readable");
    let static_names = report.locks.names();
    let static_cycles = report.locks.cycles();

    // (1) Every runtime-observed lock name is known to the static pass.
    let runtime_edges = lock_order_edges();
    for (held, acquired) in &runtime_edges {
        for name in [held, acquired] {
            assert!(
                static_names.iter().any(|n| n == name),
                "runtime observed lock {name:?} but static binding extraction missed it; \
                 static names: {static_names:?}"
            );
        }
    }
    if cfg!(debug_assertions) {
        assert!(
            !runtime_edges.is_empty(),
            "debug-build workload should have exercised at least one nested named lock"
        );
    }

    // (2) Runtime inversions stay inside the audited benign set, and
    // the static graph is acyclic.
    let benign = [("api.vic".to_string(), "sim.kernel".to_string())];
    for conflict in lock_order_conflicts() {
        assert!(
            benign.contains(&conflict),
            "runtime observed an unaudited lock-order inversion: {conflict:?}"
        );
    }
    assert_eq!(
        static_cycles,
        Vec::<Vec<String>>::new(),
        "static lock-order graph has a cycle the runtime has not hit yet"
    );
}
