//! Cross-crate integration tests: whole benchmark paths on small inputs,
//! exercising sim + switch + vic + api + mpi + kernels + apps together.

use datavortex::api::{DvCluster, SendMode};
use datavortex::apps::{heat, snap, vorticity};
use datavortex::core::config::MachineConfig;
use datavortex::core::spec::SimSpec;
use datavortex::core::time::{as_us_f64, us};
use datavortex::kernels::barrier::{barrier_latency, BarrierKind};
use datavortex::kernels::gups::{self, GupsConfig};
use datavortex::kernels::pingpong;
use datavortex::kernels::{fft, graph};
use datavortex::mpi::{MpiCluster, Payload, ReduceOp};

#[test]
fn figure3_shape_dma_beats_pio_and_mpi_wins_raw_bandwidth() {
    let words = 64 * 1024;
    let pio = pingpong::dv_pingpong(words, 1, SendMode::DirectWrite { cached_headers: false });
    let cached = pingpong::dv_pingpong(words, 1, SendMode::DirectWrite { cached_headers: true });
    let dma = pingpong::dv_pingpong(words, 1, SendMode::Dma { cached_headers: true });
    let mpi = pingpong::mpi_pingpong(words, 1);
    assert!(pio.bandwidth_gbps() < cached.bandwidth_gbps());
    assert!(cached.bandwidth_gbps() < dma.bandwidth_gbps());
    assert!(dma.bandwidth_gbps() < mpi.bandwidth_gbps(), "IB peak is higher; MPI wins ping-pong");
}

#[test]
fn figure4_shape_dv_flat_mpi_growing() {
    let dv: Vec<_> = [2, 8, 32]
        .iter()
        .map(|&n| barrier_latency(BarrierKind::DvIntrinsic, n, 30))
        .collect();
    let mpi: Vec<_> =
        [2, 8, 32].iter().map(|&n| barrier_latency(BarrierKind::Mpi, n, 30)).collect();
    assert!(dv[2] < dv[0] * 3 / 2, "DV barrier must stay nearly flat: {dv:?}");
    assert!(mpi[2] > mpi[0] * 2, "MPI barrier must grow: {mpi:?}");
    assert!(dv[2] < mpi[2]);
}

#[test]
fn figure6_shape_gups_gap_widens_with_scale() {
    let cfg = GupsConfig { table_per_node: 1 << 11, updates_per_node: 1 << 13, bucket: 1024, stream_offset: 0 };
    let gap = |nodes| {
        let d = gups::dv::run(cfg, nodes);
        let m = gups::mpi::run(cfg, nodes);
        assert_eq!(d.checksum, m.checksum);
        d.ups() / m.ups()
    };
    let g4 = gap(4);
    let g16 = gap(16);
    assert!(g16 > g4, "DV/MPI GUPS gap must widen: {g4} -> {g16}");
    assert!(g16 > 1.0, "DV must win at 16 nodes");
}

#[test]
fn figure7_shape_fft_dv_wins_at_scale_with_valid_numerics() {
    let n = 1 << 14;
    let d = fft::dv::run(n, 16, true);
    let m = fft::mpi::run(n, 16, true);
    assert!(d.max_error < 1e-8 && m.max_error < 1e-8);
    assert!(d.gflops() > m.gflops(), "dv {} mpi {}", d.gflops(), m.gflops());
}

#[test]
fn figure8_shape_bfs_dv_wins_with_valid_trees() {
    let gcfg = graph::GraphConfig { scale: 11, edgefactor: 8, seed: 1 };
    let edges = graph::kronecker_edges(&gcfg);
    let csr = graph::Csr::build(gcfg.vertices(), &edges);
    let locals = graph::partition_csr(&csr, graph::VertexPart { nodes: 8 });
    let root = graph::pick_roots(&csr, 1, 5)[0];
    let d = graph::dv::run(&locals, gcfg.vertices(), root, MachineConfig::paper_cluster());
    let m = graph::mpi::run(&locals, gcfg.vertices(), root, MachineConfig::paper_cluster());
    graph::validate_bfs(&csr, root, &d.parents).unwrap();
    graph::validate_bfs(&csr, root, &m.parents).unwrap();
    assert!(d.teps() > m.teps(), "dv {} mpi {}", d.teps(), m.teps());
}

#[test]
fn figure9_shape_apps_validate_and_dv_wins_where_the_paper_says() {
    // Heat: bit-exact + DV faster.
    let hcfg = heat::HeatConfig { n: (16, 16, 16), grid: (2, 2, 2), r: 0.1, steps: 6, report_every: 3, halo: heat::Halo::Line };
    let hd = heat::dv::run(hcfg);
    let hm = heat::mpi::run(hcfg);
    assert_eq!(heat::mpi::assemble(&hcfg, &hd.fields), heat::mpi::assemble(&hcfg, &hm.fields));
    assert!(hd.elapsed < hm.elapsed, "heat: dv {} mpi {}", hd.elapsed, hm.elapsed);

    // SNAP: bit-exact, speedup modest either way.
    let scfg = snap::SnapConfig { n: (16, 8, 8), grid: (2, 2), groups: 2, angles: 6, chunk: 4, sigma: 0.7 };
    let sd = snap::dv::run(scfg);
    let sm = snap::mpi::run(scfg);
    assert_eq!(snap::assemble_phi(&scfg, &sd.fields), snap::assemble_phi(&scfg, &sm.fields));
    let snap_speedup = sm.elapsed as f64 / sd.elapsed as f64;
    assert!((0.9..2.5).contains(&snap_speedup), "snap speedup {snap_speedup}");

    // Vorticity: numerically matched + DV faster.
    let vcfg = vorticity::VortConfig { m: 64, dt: 1e-3, steps: 2 };
    let vd = vorticity::dist::run_dv(vcfg, 8);
    let vm = vorticity::dist::run_mpi(vcfg, 8);
    assert!(vd.elapsed < vm.elapsed, "vorticity: dv {} mpi {}", vd.elapsed, vm.elapsed);
    for (a, b) in vd.omega_hat.iter().zip(&vm.omega_hat) {
        assert!(datavortex::kernels::fft::max_error(a, b) < 1e-9);
    }
}

#[test]
fn mixed_api_usage_in_one_simulation() {
    // DV memory + counters + FIFO + queries + both barrier flavors in one
    // program, at an odd node count.
    let report = DvCluster::from_spec(SimSpec::new(5)).run(|dv, ctx| {
        let me = dv.node();
        let n = dv.nodes();
        dv.gc_set_local(ctx, 9, (n - 1) as u64);
        dv.barrier(ctx);
        // All-to-all single-word writes into slot `me` of everyone.
        for d in 0..n {
            if d != me {
                dv.write_remote(ctx, d, 300 + me as u32, &[me as u64 + 1], 9, SendMode::DirectWrite { cached_headers: true });
            }
        }
        assert!(dv.gc_wait_zero(ctx, 9, Some(ctx.now() + us(500))));
        let slots = dv.read_local(ctx, 300, n);
        dv.fast_barrier(ctx);
        // Cross-check one value with a query from the left neighbor.
        let left = (me + n - 1) % n;
        let via_query = dv.read_word(ctx, left, 300 + me as u32);
        assert_eq!(via_query, me as u64 + 1);
        slots.iter().sum::<u64>()
    });
    // Each node misses only its own contribution.
    for (me, s) in report.result.iter().enumerate() {
        assert_eq!(*s, 15 - (me as u64 + 1));
    }
    assert!(as_us_f64(report.elapsed) < 1e4);
}

#[test]
fn mpi_collectives_compose_across_a_full_workflow() {
    let results = MpiCluster::from_spec(SimSpec::new(6))
        .run(|comm, ctx| {
        let me = comm.rank() as u64;
        // Gather -> root transforms -> scatter -> allreduce -> bcast.
        let gathered = comm.gather(ctx, 2, Payload::U64(vec![me * me]));
        let scattered = if comm.rank() == 2 {
            let doubled: Vec<Payload> = gathered
                .unwrap()
                .into_iter()
                .map(|p| Payload::U64(p.into_u64().iter().map(|x| x + 1).collect()))
                .collect();
            comm.scatter(ctx, 2, Some(doubled))
        } else {
            comm.scatter(ctx, 2, None)
        };
        let mine = scattered.into_u64()[0];
        let total = comm.allreduce(ctx, ReduceOp::Sum, Payload::U64(vec![mine])).into_u64()[0];
        comm.bcast(ctx, 0, (comm.rank() == 0).then(|| Payload::U64(vec![total])))
            .into_u64()[0]
        })
        .result;
    // sum over r of (r^2 + 1) for r in 0..6 = 55 + 6 = 61.
    for r in results {
        assert_eq!(r, 61);
    }
}

#[test]
fn gups_aggregation_ablation_is_faithful() {
    let cfg = GupsConfig { table_per_node: 1 << 10, updates_per_node: 1 << 11, bucket: 1024, stream_offset: 0 };
    let on = gups::dv::run_ablate(cfg, SimSpec::new(4), true);
    let off = gups::dv::run_ablate(cfg, SimSpec::new(4), false);
    assert_eq!(on.checksum, off.checksum);
    assert!(on.ups() > 1.5 * off.ups(), "aggregation gain missing: {} vs {}", on.ups(), off.ups());
}

#[test]
fn scaled_up_switch_supports_larger_clusters() {
    // Section IX: doubling nodes adds a cylinder; the runtime grows the
    // switch automatically.
    let report = DvCluster::from_spec(SimSpec::new(64)).run(|dv, ctx| {
        dv.barrier(ctx);
        dv.send_fifo(
            ctx,
            (dv.node() + 1) % 64,
            &[dv.node() as u64],
            datavortex::core::packet::SCRATCH_GC,
            SendMode::DirectWrite { cached_headers: true },
        );
        dv.fifo_recv(ctx)
    });
    for (me, got) in report.result.iter().enumerate() {
        assert_eq!(*got as usize, (me + 63) % 64);
    }
    assert!(report.elapsed > 0);
}
